//! Multi-Clock (Maruf et al., HPCA '22).
//!
//! Extends the kernel's clock page-reclamation algorithm with multi-level
//! LRU lists driven purely by hardware accessed bits — no forced page
//! faults, hence Multi-Clock's low context-switch rate in Fig 8. Each scan
//! period, a clock hand sweeps the address spaces: pages with the accessed
//! bit set climb one level (bit cleared), idle pages sink one level.
//! Slow-tier pages at the top level are promoted; fast-tier pages at the
//! bottom level are demoted under memory pressure. The frequency resolution
//! is still 0–1 observed access per sweep — levels encode *recency streaks*,
//! not rates.

use sim_clock::Nanos;
use tiered_mem::{
    scan_budget_pages, AccessResult, MigrateMode, PageFlags, ProcessId, TierId, TieredSystem, Vpn,
};

use crate::policy::{decode_token, encode_token, ScanCursor, TieringPolicy};

const EV_SWEEP: u16 = 1;
const EV_DEMOTE: u16 = 2;

/// Multi-Clock configuration.
#[derive(Debug, Clone)]
pub struct MultiClockConfig {
    /// Clock sweep period over each address space.
    pub sweep_period: Nanos,
    /// Pages visited per sweep event.
    pub sweep_step_pages: u32,
    /// Number of LRU levels (the paper's multi-level lists).
    pub levels: u32,
    /// Level at which a slow-tier page becomes a promotion candidate.
    pub promote_level: u32,
    /// Demotion check interval.
    pub demote_interval: Nanos,
}

impl Default for MultiClockConfig {
    fn default() -> Self {
        MultiClockConfig {
            sweep_period: Nanos::from_secs(60),
            sweep_step_pages: 4096,
            levels: 4,
            promote_level: 3,
            demote_interval: Nanos::from_secs(5),
        }
    }
}

/// The Multi-Clock baseline policy.
///
/// On a longer chain the multi-level-LRU mechanism cascades hop-wise: the
/// sweep still grades every page by recency streak, a non-top page reaching
/// the promote level climbs one hop, and the demotion daemon runs per tier,
/// pushing bottom-level pages one hop down.
pub struct MultiClock {
    cfg: MultiClockConfig,
    cursors: Vec<ScanCursor>,
    /// Managed tiers the policy operates across (2 = classic Multi-Clock).
    tiers: usize,
}

impl MultiClock {
    /// Creates the classic two-tier policy.
    pub fn new(cfg: MultiClockConfig) -> MultiClock {
        MultiClock::for_tiers(cfg, 2)
    }

    /// Creates the policy over `tiers` managed tiers.
    pub fn for_tiers(cfg: MultiClockConfig, tiers: usize) -> MultiClock {
        assert!(
            (2..=tiered_mem::MAX_TIERS).contains(&tiers),
            "Multi-Clock needs 2..={} managed tiers, got {tiers}",
            tiered_mem::MAX_TIERS
        );
        MultiClock {
            cfg,
            cursors: Vec::new(),
            tiers,
        }
    }
}

impl TieringPolicy for MultiClock {
    fn name(&self) -> &'static str {
        match self.tiers {
            2 => "MultiClock",
            3 => "MultiClock-3",
            _ => "MultiClock-N",
        }
    }

    fn init(&mut self, sys: &mut TieredSystem) {
        self.cursors.clear();
        for pid in sys.pids().collect::<Vec<_>>() {
            let pages = sys.process(pid).space.pages();
            let cursor = ScanCursor::new(pages, self.cfg.sweep_step_pages, self.cfg.sweep_period);
            sys.schedule_in(cursor.event_interval, encode_token(EV_SWEEP, pid.0, 0));
            self.cursors.push(cursor);
        }
        sys.schedule_in(self.cfg.demote_interval, encode_token(EV_DEMOTE, 0, 0));
    }

    fn on_event(&mut self, sys: &mut TieredSystem, token: u64) {
        let (kind, pid_raw, _) = decode_token(token);
        match kind {
            EV_SWEEP => {
                let pid = ProcessId(pid_raw);
                let cur = &mut self.cursors[pid_raw as usize];
                let top = self.cfg.promote_level;
                let max_level = self.cfg.levels - 1;
                let mut visited = 0u64;
                let mut promote: Vec<(Vpn, TierId)> = Vec::new();
                cur.cursor =
                    sys.process_mut(pid)
                        .space
                        .walk_range(cur.cursor, cur.step_pages, |vpn, e| {
                            visited += 1;
                            let level = e.policy_extra;
                            if e.flags.has(PageFlags::ACCESSED) {
                                e.flags.clear(PageFlags::ACCESSED);
                                e.policy_extra = (level + 1).min(max_level);
                                let t = e.tier();
                                if t != TierId::FAST && e.policy_extra >= top {
                                    // Climb one hop toward the top tier.
                                    promote.push((vpn, TierId(t.0 - 1)));
                                }
                            } else {
                                e.policy_extra = level.saturating_sub(1);
                            }
                        });
                // Sweeping reads/clears accessed bits; no faults are forced.
                sys.charge_scan(pid, visited.max(1));
                for (vpn, dest) in promote {
                    // Opportunistic: promote into available headroom; the
                    // demotion daemon opens space at its own pace. Forcing
                    // reclaim here would let one process's sweep evict
                    // another's working set wholesale.
                    let _ = sys.migrate(pid, vpn, dest, MigrateMode::Async);
                }
                let interval = cur.event_interval;
                sys.schedule_in(interval, encode_token(EV_SWEEP, pid.0, 0));
            }
            EV_DEMOTE => {
                // Cascaded demotion, top tier down: each non-terminal tier
                // ages its LRU at sweep-period timescale, then demotes
                // bottom-level pages one hop to keep promotion headroom.
                for t in 0..(self.tiers - 1) as u8 {
                    let tier = TierId(t);
                    let age_budget = scan_budget_pages(
                        sys.total_frames(tier),
                        self.cfg.demote_interval,
                        self.cfg.sweep_period,
                    );
                    sys.age_active_list(tier, age_budget.max(16));
                    // The watermarks are sized for the top tier; deeper tiers
                    // hold a fixed 1/32 headroom instead.
                    let target = if t == 0 {
                        sys.watermarks
                            .high
                            .saturating_add(sys.total_frames(tier) / 32)
                    } else {
                        (sys.total_frames(tier) / 32).max(1)
                    };
                    let mut budget = 128u32;
                    while sys.free_frames(tier) < target && budget > 0 {
                        budget -= 1;
                        match sys.pop_inactive_victim(tier) {
                            Some((pid, vpn)) => {
                                // Respect levels: only genuinely cold pages leave.
                                let level = sys.process(pid).space.entry(vpn).policy_extra;
                                if level == 0 {
                                    let _ =
                                        sys.migrate(pid, vpn, TierId(t + 1), MigrateMode::Async);
                                } else {
                                    // Referenced at some level: rotate back.
                                    sys.lru_insert(pid, vpn, tiered_mem::LruKind::Active);
                                }
                            }
                            None => break,
                        }
                    }
                }
                sys.trace_period(Default::default());
                sys.schedule_in(self.cfg.demote_interval, encode_token(EV_DEMOTE, 0, 0));
            }
            _ => unreachable!("unknown MultiClock event {}", kind),
        }
    }

    fn on_hint_fault(
        &mut self,
        _sys: &mut TieredSystem,
        _pid: ProcessId,
        _vpn: Vpn,
        _write: bool,
        _res: &AccessResult,
    ) {
        // Multi-Clock never poisons PTEs, so it installs no fault handler.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DriverConfig, SimulationDriver};
    use tiered_mem::{PageSize, SystemConfig};
    use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

    fn run_mc(run_ms: u64) -> TieredSystem {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(1024, 4096));
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = MultiClock::new(MultiClockConfig {
            sweep_period: Nanos::from_millis(40),
            sweep_step_pages: 512,
            levels: 4,
            promote_level: 3,
            demote_interval: Nanos::from_millis(20),
        });
        SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(run_ms),
            ..Default::default()
        })
        .run(&mut sys, &mut wls, &mut policy);
        sys
    }

    #[test]
    fn no_hint_faults_at_all() {
        let sys = run_mc(300);
        assert_eq!(
            sys.stats.hint_faults, 0,
            "Multi-Clock must not force faults"
        );
    }

    #[test]
    fn hot_pages_climb_and_promote() {
        let sys = run_mc(500);
        assert!(sys.stats.promoted_pages > 0, "{}", sys.stats.promoted_pages);
    }

    #[test]
    fn levels_stay_bounded() {
        let sys = run_mc(300);
        let pid = ProcessId(0);
        for i in 0..sys.process(pid).space.pages() {
            assert!(sys.process(pid).space.entry(Vpn(i)).policy_extra < 4);
        }
    }

    #[test]
    fn three_tier_multiclock_populates_every_tier() {
        let mut sys = TieredSystem::new(SystemConfig::three_tier(768, 1536, 4096));
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = MultiClock::for_tiers(
            MultiClockConfig {
                sweep_period: Nanos::from_millis(40),
                sweep_step_pages: 512,
                levels: 4,
                promote_level: 3,
                demote_interval: Nanos::from_millis(20),
            },
            3,
        );
        assert_eq!(policy.name(), "MultiClock-3");
        SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(500),
            ..Default::default()
        })
        .run(&mut sys, &mut wls, &mut policy);
        assert_eq!(
            sys.stats.hint_faults, 0,
            "Multi-Clock must not force faults"
        );
        assert!(sys.stats.promoted_pages > 0);
        for t in 0..3 {
            assert!(sys.used_frames(TierId(t)) > 0, "tier {t} empty");
        }
    }

    #[test]
    fn context_switch_rate_lower_than_nb() {
        // The Fig 8 claim: lowest context switches because no forced faults.
        let mc = run_mc(300);
        let nb = {
            let mut sys = TieredSystem::new(SystemConfig::dram_pmem(1024, 4096));
            let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
            sys.add_process(w.address_space_pages(), PageSize::Base);
            let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
            let mut policy =
                crate::linux_nb::LinuxNumaBalancing::new(crate::linux_nb::LinuxNbConfig {
                    scan_period: Nanos::from_millis(40),
                    scan_step_pages: 512,
                    promote_tier_frac_per_period: 0.23,
                });
            SimulationDriver::new(DriverConfig {
                run_for: Nanos::from_millis(300),
                ..Default::default()
            })
            .run(&mut sys, &mut wls, &mut policy);
            sys
        };
        assert!(
            mc.stats.context_switch_rate() < nb.stats.context_switch_rate(),
            "MC {} vs NB {}",
            mc.stats.context_switch_rate(),
            nb.stats.context_switch_rate()
        );
    }
}
