//! A PEBS (processor event-based sampling) simulator.
//!
//! Real PEBS delivers a sample every N retired memory operations, with the
//! kernel capping the aggregate rate (≤100 k samples/s; Section 2.3). In the
//! simulation the access stream *is* the retired-operation stream, so a
//! countdown sampler with a deterministic jittered period reproduces both
//! the information content and the central limitation the paper analyses:
//! at base-page granularity the per-page expected sample count is far below
//! the 2^5–2^15 counters a stable classification needs.

use sim_clock::DetRng;

/// A rate-capped sampling simulator.
#[derive(Debug, Clone)]
pub struct PebsSampler {
    period: u64,
    countdown: u64,
    rng: DetRng,
    taken: u64,
    seen: u64,
}

impl PebsSampler {
    /// One sample per `period` accesses on average. A period of 1000 at a
    /// ~10^8 accesses/s workload models the ~10^5 samples/s hardware cap.
    pub fn new(period: u64, seed: u64) -> PebsSampler {
        assert!(period > 0, "sampling period must be positive");
        let mut rng = DetRng::seed(seed);
        let countdown = Self::draw(period, &mut rng);
        PebsSampler {
            period,
            countdown,
            rng,
            taken: 0,
            seen: 0,
        }
    }

    /// Jittered inter-sample gap: uniform in [period/2, 3·period/2), keeping
    /// the mean at `period` while decorrelating from strided access loops.
    fn draw(period: u64, rng: &mut DetRng) -> u64 {
        if period == 1 {
            1
        } else {
            period / 2 + rng.below(period)
        }
    }

    /// Observes one access; returns `true` if it is sampled.
    #[inline]
    pub fn observe(&mut self) -> bool {
        self.seen += 1;
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = Self::draw(self.period, &mut self.rng);
            self.taken += 1;
            true
        } else {
            false
        }
    }

    /// Samples taken so far.
    pub fn samples_taken(&self) -> u64 {
        self.taken
    }

    /// Accesses observed so far.
    pub fn accesses_seen(&self) -> u64 {
        self.seen
    }

    /// Configured mean period.
    pub fn period(&self) -> u64 {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_rate_matches_period() {
        let mut s = PebsSampler::new(100, 1);
        let n = 1_000_000;
        let taken = (0..n).filter(|_| s.observe()).count();
        let rate = n as f64 / taken as f64;
        assert!((rate - 100.0).abs() < 5.0, "effective period {}", rate);
        assert_eq!(s.samples_taken(), taken as u64);
        assert_eq!(s.accesses_seen(), n as u64);
    }

    #[test]
    fn period_one_samples_everything() {
        let mut s = PebsSampler::new(1, 2);
        assert!((0..100).all(|_| s.observe()));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = PebsSampler::new(50, 7);
        let mut b = PebsSampler::new(50, 7);
        for _ in 0..10_000 {
            assert_eq!(a.observe(), b.observe());
        }
    }

    #[test]
    fn jitter_decorrelates_phases() {
        // Two samplers with different seeds should not sample in lockstep.
        let mut a = PebsSampler::new(64, 1);
        let mut b = PebsSampler::new(64, 2);
        let both = (0..100_000)
            .filter(|_| {
                let x = a.observe();
                let y = b.observe();
                x && y
            })
            .count();
        // Independent 1/64 samplers coincide ~1/4096 of the time.
        assert!(both < 100, "coincidences: {}", both);
    }
}
