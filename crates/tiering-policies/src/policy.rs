//! The [`TieringPolicy`] trait and shared policy plumbing.

use sim_clock::Nanos;
use tiered_mem::{AccessResult, ProcessId, TieredSystem, Vpn};

/// A kernel tiering policy driving page placement on a [`TieredSystem`].
///
/// The simulation driver calls the hooks in this order:
///
/// 1. [`TieringPolicy::init`] once, to schedule daemon events;
/// 2. [`TieringPolicy::on_event`] whenever a scheduled event comes due;
/// 3. [`TieringPolicy::on_hint_fault`] after an access takes a `PROT_NONE`
///    fault (the policy decides whether to migrate);
/// 4. [`TieringPolicy::on_access`] after *every* access (for sampling-based
///    policies; must be cheap).
pub trait TieringPolicy: Send {
    /// Short name used in reports ("Linux-NB", "Chrono", ...).
    fn name(&self) -> &'static str;

    /// Schedules initial daemon events and performs per-process setup.
    fn init(&mut self, sys: &mut TieredSystem);

    /// Handles a due daemon event carrying a token built by [`encode_token`].
    fn on_event(&mut self, sys: &mut TieredSystem, token: u64);

    /// Handles a hint fault (`PROT_NONE` cleared by an access of `pid` to
    /// `vpn`). `res` carries the fault timestamp used by CIT.
    fn on_hint_fault(
        &mut self,
        sys: &mut TieredSystem,
        pid: ProcessId,
        vpn: Vpn,
        write: bool,
        res: &AccessResult,
    );

    /// Observes an access (sampling hook). Default: nothing.
    fn on_access(&mut self, _sys: &mut TieredSystem, _pid: ProcessId, _vpn: Vpn, _write: bool) {}
}

/// Packs an event token: a policy-defined `kind`, the process it concerns,
/// and a 32-bit argument.
pub fn encode_token(kind: u16, pid: u16, arg: u32) -> u64 {
    (kind as u64) << 48 | (pid as u64) << 32 | arg as u64
}

/// Unpacks a token produced by [`encode_token`].
pub fn decode_token(token: u64) -> (u16, u16, u32) {
    ((token >> 48) as u16, (token >> 32) as u16, token as u32)
}

/// Per-process scan cursor shared by every NUMA-balancing-derived scanner
/// (Linux-NB, Auto-Tiering, TPP, Chrono's Ticking-scan).
///
/// A full pass over the address space takes one scan period; each scan event
/// covers `step_pages` and the events are spaced so the pass completes on
/// time, mirroring `task_numa_work`'s chunked scanning.
#[derive(Debug, Clone)]
pub struct ScanCursor {
    /// Next page to scan.
    pub cursor: Vpn,
    /// Pages marked per scan event.
    pub step_pages: u32,
    /// Delay between scan events for this process.
    pub event_interval: Nanos,
}

impl ScanCursor {
    /// Builds a cursor for a space of `space_pages`, covering it once per
    /// `scan_period` in chunks of `step_pages`.
    pub fn new(space_pages: u32, step_pages: u32, scan_period: Nanos) -> ScanCursor {
        let step_pages = step_pages.max(1).min(space_pages.max(1));
        let chunks = space_pages.div_ceil(step_pages).max(1);
        ScanCursor {
            cursor: Vpn(0),
            step_pages,
            event_interval: scan_period / chunks as u64,
        }
    }
}

/// A policy that never migrates: first-touch placement only. The control
/// every evaluation needs, and a useful base case in tests.
#[derive(Debug, Default)]
pub struct NullPolicy;

impl TieringPolicy for NullPolicy {
    fn name(&self) -> &'static str {
        "Static"
    }

    fn init(&mut self, _sys: &mut TieredSystem) {}

    fn on_event(&mut self, _sys: &mut TieredSystem, _token: u64) {}

    fn on_hint_fault(
        &mut self,
        _sys: &mut TieredSystem,
        _pid: ProcessId,
        _vpn: Vpn,
        _write: bool,
        _res: &AccessResult,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrip() {
        let t = encode_token(7, 42, 0xDEADBEEF);
        assert_eq!(decode_token(t), (7, 42, 0xDEADBEEF));
    }

    #[test]
    fn token_extremes() {
        let t = encode_token(u16::MAX, u16::MAX, u32::MAX);
        assert_eq!(decode_token(t), (u16::MAX, u16::MAX, u32::MAX));
        assert_eq!(decode_token(encode_token(0, 0, 0)), (0, 0, 0));
    }

    #[test]
    fn scan_cursor_divides_period() {
        let c = ScanCursor::new(1000, 100, Nanos::from_secs(10));
        assert_eq!(c.step_pages, 100);
        assert_eq!(c.event_interval, Nanos::from_secs(1));
    }

    #[test]
    fn scan_cursor_clamps_step_to_space() {
        let c = ScanCursor::new(50, 1000, Nanos::from_secs(1));
        assert_eq!(c.step_pages, 50);
        assert_eq!(c.event_interval, Nanos::from_secs(1));
    }

    #[test]
    fn scan_cursor_handles_tiny_space() {
        let c = ScanCursor::new(0, 64, Nanos::from_secs(1));
        assert_eq!(c.step_pages, 1);
    }
}
