//! Multi-tenant sharded simulation with deterministic parallelism.
//!
//! Each tenant (one simulated process group: its own page tables, LRU,
//! policy instance, promotion queue) lives in a [`TenantShard`] over a
//! partition of the global frame pool (`tiered_mem::PartitionPlan`), so
//! shards share no mutable state and need no locks. [`ShardedSim`] advances
//! all shards with **conservative time-stepping**: every shard runs
//! independently up to the next barrier (one barrier per scan period), then
//! cross-shard effects — migration-slot admission grants, capacity events —
//! are applied single-threaded in tenant-id order before the next interval
//! begins.
//!
//! Because a shard's step is a pure function of its own state and the
//! barrier horizon, and barrier effects are computed after *all* shards
//! reach the barrier, the schedule of work is independent of how shards are
//! assigned to worker threads: a 1-thread and an N-thread run of the same
//! seed produce byte-identical per-tenant trace digests. The
//! `tests/determinism.rs` thread-invariance suite holds this against the
//! committed goldens.
//!
//! The admission hook follows TierBPF: the bounded global pool of in-flight
//! migration slots is re-granted at each barrier as a weighted share to the
//! tenants that demonstrated demand, with a largest-deficit distribution of
//! the leftover and a starvation counter that front-runs chronically losing
//! tenants when slots are scarce.

use sim_clock::{DetRng, Nanos};
use tiered_mem::{TierEvent, TieredSystem};
use workloads::Workload;

use crate::driver::{DriverConfig, DriverSession, RunResult};
use crate::policy::TieringPolicy;

/// `MigrateError::index` slot for backpressure-rejected fast migrations —
/// the admission hook reads it as a demand signal.
const BACKPRESSURE_IDX: usize = 3;

/// Configuration of the TierBPF-style per-tenant admission hook.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// When false, the sharded runner never touches any shard's slot cap —
    /// single-tenant runs then reproduce the classic driver byte-for-byte.
    pub enabled: bool,
    /// Global pool of in-flight migration slots shared by all tenants.
    pub total_slots: usize,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            enabled: false,
            // Matches `MigrationSpec::default().inflight_slots`, so enabling
            // the hook over one tenant grants it exactly the classic budget.
            total_slots: 512,
        }
    }
}

/// Configuration of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Simulated horizon of the whole run.
    pub run_for: Nanos,
    /// Barrier interval — one conservative time step. Aligning this with
    /// the policies' scan period keeps admission decisions in phase with
    /// promotion-queue drains.
    pub barrier_interval: Nanos,
    /// Worker threads stepping shards between barriers (1 = sequential).
    /// Digests must not depend on this; only wall-clock time does.
    pub threads: usize,
    /// When set, shards are stepped in a per-window pseudorandom order
    /// (Fisher–Yates over `DetRng::split(seed, barrier_index)`) instead of
    /// id order, and the thread chunking follows that order. Digests must
    /// not depend on this either — shards share nothing between barriers —
    /// which is exactly what the `tests/determinism.rs` permutation
    /// property and the chrono-race interleaving checker hold.
    pub permute_seed: Option<u64>,
    /// Per-tenant migration-slot admission.
    pub admission: AdmissionConfig,
    /// Tier failure-domain events applied to *every* shard at the first
    /// barrier at or after each event's firing time, in tenant-id order —
    /// the cross-shard analogue of a per-system
    /// `tiered_mem::FaultPlan::tier_events` schedule. Because application
    /// happens single-threaded at the barrier, the chaos is identical for
    /// any worker-thread count.
    pub tier_events: Vec<TierEvent>,
}

impl ShardedConfig {
    /// A sharded run over the given horizon with the default 5 ms barrier.
    pub fn new(run_for: Nanos) -> ShardedConfig {
        ShardedConfig {
            run_for,
            barrier_interval: Nanos::from_millis(5),
            threads: 1,
            permute_seed: None,
            admission: AdmissionConfig::default(),
            tier_events: Vec::new(),
        }
    }
}

/// One tenant: its own tiered system (over a frame partition), workload
/// streams, policy instance, and paused driver session.
pub struct TenantShard {
    /// Tenant id — must equal the shard's index in the runner.
    pub id: u32,
    /// Admission weight (share of the global migration-slot pool).
    pub weight: u64,
    /// The tenant's private substrate (frame tables over its partition).
    pub sys: TieredSystem,
    /// One workload per process in `sys`, same order.
    pub workloads: Vec<Box<dyn Workload>>,
    /// The tenant's policy instance.
    pub policy: Box<dyn TieringPolicy>,
    session: DriverSession,
}

impl TenantShard {
    /// Builds a shard. `driver` configures the per-tenant session; its
    /// `run_for` is clamped to the sharded run's horizon at run time.
    pub fn new(
        id: u32,
        weight: u64,
        sys: TieredSystem,
        workloads: Vec<Box<dyn Workload>>,
        policy: Box<dyn TieringPolicy>,
        driver: DriverConfig,
    ) -> TenantShard {
        TenantShard {
            id,
            weight,
            sys,
            workloads,
            policy,
            session: DriverSession::new(driver),
        }
    }

    /// Accesses executed so far.
    pub fn accesses(&self) -> u64 {
        self.session.accesses()
    }

    /// Whether this tenant's run hit a terminal stop condition.
    pub fn is_finished(&self) -> bool {
        self.session.is_finished()
    }

    fn step_to(&mut self, horizon: Nanos) {
        self.session.step_until(
            horizon,
            &mut self.sys,
            &mut self.workloads,
            self.policy.as_mut(),
            |_, _, _, _| {},
            |_| {},
        );
    }
}

/// Per-tenant outcome of a sharded run.
#[derive(Debug)]
pub struct TenantOutcome {
    /// Tenant id.
    pub id: u32,
    /// Admission weight the run used.
    pub weight: u64,
    /// The tenant's classic run result (latency histograms, series, ...).
    pub result: RunResult,
    /// The tenant's trace digest (`sys.trace.digest()`).
    pub digest: u64,
    /// The tenant's fast-tier memory access ratio.
    pub fmar: f64,
    /// Cumulative in-flight slots granted across barriers (0 if hook off).
    pub granted_slots: u64,
    /// Worst consecutive-barriers-starved count this tenant ever reached.
    pub max_starvation: u32,
}

/// Result of a sharded run: per-tenant outcomes plus the post-run shards
/// (for oracle inspection) and fairness aggregates.
pub struct ShardedRunResult {
    /// Per-tenant outcomes, tenant-id order.
    pub outcomes: Vec<TenantOutcome>,
    /// The shards after the run, for invariant checks and stats.
    pub shards: Vec<TenantShard>,
    /// Barriers executed.
    pub barriers: u64,
}

impl ShardedRunResult {
    /// One digest for the whole run. A single-tenant run's combined digest
    /// is exactly that tenant's trace digest (the classic-driver compat
    /// surface); multi-tenant runs fold `(id, digest)` pairs in id order
    /// through FNV-1a, so the value is thread-count-invariant.
    pub fn combined_digest(&self) -> u64 {
        if self.outcomes.len() == 1 {
            return self.outcomes[0].digest;
        }
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for o in &self.outcomes {
            fold(o.id as u64);
            fold(o.digest);
        }
        h
    }

    /// Total accesses across tenants.
    pub fn total_accesses(&self) -> u64 {
        self.outcomes.iter().map(|o| o.result.accesses).sum()
    }

    /// Max simulated makespan across tenants.
    pub fn makespan(&self) -> Nanos {
        self.outcomes
            .iter()
            .map(|o| o.result.makespan)
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// Gini coefficient of per-tenant cumulative slot grants (0 = equal
    /// shares). With the hook disabled (no grants anywhere) this is 0.
    pub fn slot_share_gini(&self) -> f64 {
        gini(
            &self
                .outcomes
                .iter()
                .map(|o| o.granted_slots as f64)
                .collect::<Vec<_>>(),
        )
    }

    /// `(min, max)` per-tenant FMAR — the fairness spread headline.
    pub fn fmar_spread(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for o in &self.outcomes {
            lo = lo.min(o.fmar);
            hi = hi.max(o.fmar);
        }
        if self.outcomes.is_empty() {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }
}

/// Gini coefficient of a non-negative sample (0 = perfectly equal,
/// → 1 = one holder). Zero-sum samples report 0.
pub fn gini(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite fairness samples"));
    let sum: f64 = sorted.iter().sum();
    if sum <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, v)| (i as f64 + 1.0) * v)
        .sum();
    (2.0 * weighted) / (n as f64 * sum) - (n as f64 + 1.0) / n as f64
}

/// One demanding tenant's claim on the slot pool at a barrier.
#[derive(Debug, Clone, Copy)]
pub struct SlotClaim {
    /// The tenant's admission weight (zero behaves as one).
    pub weight: u64,
    /// Consecutive barriers this tenant has demanded and received nothing.
    pub starvation: u32,
}

/// Pure barrier-time grant computation over the demanding tenants, in claim
/// order. Two regimes:
///
/// - **Weighted** (`total_slots ≥ 2·claims`): every claimant is floored at
///   `max(1, ceil(target/2))` where `target = total·wᵢ/Σw` — this proves
///   the *weight/2 share bound* (no demanding tenant's grant falls below
///   half its weighted fair share; Σ of the floors provably fits because
///   Σ ceil(targetᵢ/2) ≤ total/2 + |claims| ≤ total here). The leftover is
///   dealt round-robin in largest-deficit order (ties: starvation
///   descending, then claim index), so Σ grants = total exactly.
/// - **Scarce** (`total_slots < 2·claims`): one slot each to the
///   `total_slots` most-starved (then heaviest, then lowest-index)
///   claimants. Losers' starvation counters front-run them next barrier, so
///   no demanding tenant waits more than ⌈claims/total⌉ barriers.
pub fn admission_grants(total_slots: u64, claims: &[SlotClaim]) -> Vec<u64> {
    let n = claims.len();
    let mut grants = vec![0u64; n];
    if n == 0 || total_slots == 0 {
        return grants;
    }
    if total_slots >= 2 * n as u64 {
        let sum_w: u128 = claims.iter().map(|c| c.weight.max(1) as u128).sum();
        let mut assigned = 0u64;
        // (deficit, starvation, index) ordering for the leftover.
        let mut order: Vec<(i128, u32, usize)> = Vec::with_capacity(n);
        for (i, c) in claims.iter().enumerate() {
            let num = total_slots as u128 * c.weight.max(1) as u128;
            let base = (num.div_ceil(2 * sum_w) as u64).max(1);
            grants[i] = base;
            assigned += base;
            let deficit = num as i128 - (base as u128 * sum_w) as i128;
            order.push((deficit, c.starvation, i));
        }
        order.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
        let leftover = total_slots - assigned;
        for k in 0..leftover {
            grants[order[k as usize % order.len()].2] += 1;
        }
    } else {
        let mut order: Vec<(u32, u64, usize)> = claims
            .iter()
            .enumerate()
            .map(|(i, c)| (c.starvation, c.weight, i))
            .collect();
        order.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
        for &(_, _, i) in order.iter().take(total_slots as usize) {
            grants[i] = 1;
        }
    }
    grants
}

/// Per-tenant migration-activity snapshot the admission hook diffs between
/// barriers to detect demand.
#[derive(Debug, Clone, Copy, Default)]
struct ActivitySnapshot {
    begun: u64,
    completed: u64,
    aborted: u64,
    backpressured: u64,
}

impl ActivitySnapshot {
    fn of(sys: &TieredSystem) -> ActivitySnapshot {
        ActivitySnapshot {
            begun: sys.stats.begun_migrations,
            completed: sys.stats.completed_migrations,
            aborted: sys.stats.aborted_migrations,
            backpressured: sys.stats.failed_fast_migrations[BACKPRESSURE_IDX],
        }
    }
}

/// Barrier-time admission state: starvation counters, cumulative grants,
/// and the previous activity snapshots.
struct AdmissionControl {
    cfg: AdmissionConfig,
    starvation: Vec<u32>,
    max_starvation: Vec<u32>,
    granted_total: Vec<u64>,
    prev: Vec<ActivitySnapshot>,
}

impl AdmissionControl {
    fn new(cfg: AdmissionConfig, tenants: usize) -> AdmissionControl {
        AdmissionControl {
            cfg,
            starvation: vec![0; tenants],
            max_starvation: vec![0; tenants],
            granted_total: vec![0; tenants],
            prev: vec![ActivitySnapshot::default(); tenants],
        }
    }

    /// Computes and applies this barrier's slot grants, in tenant-id order.
    /// `first` treats every tenant as demanding (nobody has had a chance to
    /// demonstrate demand yet). Returns the audit record of the decision —
    /// the seam through which `tiering-verify` replays every barrier
    /// through the chrono-race `canonical_grants` reimplementation.
    fn apply(&mut self, shards: &mut [TenantShard], first: bool, barrier: u64) -> BarrierAudit {
        let total = self.cfg.total_slots as u64;
        // Demand detection: any migration activity since the last barrier,
        // in-flight work, or admission rejections (a zero-cap tenant can
        // only signal through rejections, which is why they count).
        let mut active: Vec<usize> = Vec::new();
        for (i, s) in shards.iter().enumerate() {
            let now = ActivitySnapshot::of(&s.sys);
            let p = self.prev[i];
            let demanding = first
                || now.begun > p.begun
                || now.completed > p.completed
                || now.aborted > p.aborted
                || now.backpressured > p.backpressured
                || s.sys.migration_in_flight_count() > 0;
            self.prev[i] = now;
            if demanding {
                active.push(i);
            }
        }

        let claims: Vec<SlotClaim> = active
            .iter()
            .map(|&i| SlotClaim {
                weight: shards[i].weight,
                starvation: self.starvation[i],
            })
            .collect();
        let mut grants = vec![0u64; shards.len()];
        if !claims.is_empty() {
            for (&i, g) in active.iter().zip(admission_grants(total, &claims)) {
                grants[i] = g;
            }
        }

        // Apply in tenant-id order: cap the engine, bump the counters, and
        // trace the grant into the tenant's own ring.
        let mut is_active = vec![false; shards.len()];
        for &i in &active {
            is_active[i] = true;
        }
        for (i, s) in shards.iter_mut().enumerate() {
            let g = grants[i];
            s.sys.set_inflight_slots(g as usize);
            self.granted_total[i] += g;
            if is_active[i] {
                if g > 0 {
                    self.starvation[i] = 0;
                } else {
                    self.starvation[i] += 1;
                    self.max_starvation[i] = self.max_starvation[i].max(self.starvation[i]);
                }
            } else {
                self.starvation[i] = 0;
            }
            let in_flight = s.sys.migration_in_flight_count() as u32;
            s.sys
                .trace_admission(s.id, g as u32, in_flight, self.starvation[i]);
        }

        BarrierAudit {
            barrier,
            first,
            total_slots: total,
            active: active.iter().map(|&i| shards[i].id).collect(),
            claims,
            grants,
        }
    }
}

/// One barrier's admission decision, exactly as applied: the demanding
/// tenants (tenant-id order), their claims, and the full per-tenant grant
/// vector. `ShardedSim::run_with_audit` hands one of these to its audit
/// hook per barrier, which is how the tiering-verify oracle replays every
/// decision through the independently implemented
/// `tiering_analysis::canonical_grants` and cross-checks the result.
#[derive(Debug, Clone)]
pub struct BarrierAudit {
    /// Barrier index (0 = the pre-run first grant).
    pub barrier: u64,
    /// Whether this was the first barrier (everyone treated as demanding).
    pub first: bool,
    /// The global slot pool the decision distributed.
    pub total_slots: u64,
    /// Demanding tenant ids, in tenant-id order.
    pub active: Vec<u32>,
    /// The demanding tenants' claims, in the same order as `active`.
    pub claims: Vec<SlotClaim>,
    /// Granted slots per tenant (indexed by tenant id; non-demanding
    /// tenants hold 0).
    pub grants: Vec<u64>,
}

/// The sharded runner: shards plus barrier-time admission state.
pub struct ShardedSim {
    cfg: ShardedConfig,
    shards: Vec<TenantShard>,
}

impl ShardedSim {
    /// Builds a runner. Shard ids must equal their index (the barrier
    /// applies cross-shard effects in this order).
    pub fn new(cfg: ShardedConfig, shards: Vec<TenantShard>) -> ShardedSim {
        assert!(!shards.is_empty(), "at least one tenant shard");
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.id as usize, i, "shard ids must be dense and ordered");
        }
        ShardedSim { cfg, shards }
    }

    /// Runs to the horizon. Equivalent to [`ShardedSim::run_with`] with a
    /// no-op barrier hook.
    pub fn run(self) -> ShardedRunResult {
        self.run_with(|_| {})
    }

    /// Runs to the horizon, invoking `barrier_hook` for every shard (in
    /// tenant-id order, after admission was applied) at every barrier and
    /// once after the final one — the seam the tenant-storm fuzz oracle
    /// inspects cross-shard invariants through.
    pub fn run_with<H>(self, barrier_hook: H) -> ShardedRunResult
    where
        H: FnMut(&TenantShard),
    {
        self.run_with_audit(barrier_hook, |_| {})
    }

    /// [`ShardedSim::run_with`], plus an audit hook receiving every
    /// barrier's [`BarrierAudit`] (the first pre-run grant included) before
    /// the per-shard barrier hooks fire. The audit is how external oracles
    /// re-derive each admission decision without reaching into the
    /// otherwise-private control state.
    pub fn run_with_audit<H, A>(
        mut self,
        mut barrier_hook: H,
        mut audit_hook: A,
    ) -> ShardedRunResult
    where
        H: FnMut(&TenantShard),
        A: FnMut(&BarrierAudit),
    {
        let run_for = self.cfg.run_for;
        let step = self.cfg.barrier_interval.max(Nanos(1));
        let threads = self.cfg.threads.max(1);
        let mut ctl = AdmissionControl::new(self.cfg.admission.clone(), self.shards.len());
        let mut tier_events = self.cfg.tier_events.clone();
        tier_events.sort_by_key(|e| e.at);
        let mut next_tier_event = 0usize;

        if ctl.cfg.enabled {
            audit_hook(&ctl.apply(&mut self.shards, true, 0));
        }

        let mut barriers = 0u64;
        let mut now = Nanos::ZERO;
        while now < run_for && self.shards.iter().any(|s| !s.is_finished()) {
            let next = (now + step).min(run_for);
            // Shards share nothing between barriers, so neither the order
            // shards are stepped in nor their assignment to threads can
            // change any per-shard state. `permute_seed` exercises that
            // claim: a per-window Fisher–Yates shuffle of the step order
            // (and of the chunk boundaries) that must leave every digest
            // byte-identical.
            let order: Option<Vec<usize>> = self.cfg.permute_seed.map(|seed| {
                let mut order: Vec<usize> = (0..self.shards.len()).collect();
                let mut rng = DetRng::split(seed, barriers);
                for i in (1..order.len()).rev() {
                    let j = rng.index(i + 1);
                    order.swap(i, j);
                }
                order
            });
            match order {
                None if threads == 1 || self.shards.len() == 1 => {
                    for s in self.shards.iter_mut() {
                        s.step_to(next);
                    }
                }
                None => {
                    // Chunking by contiguous id ranges keeps the default
                    // partitioning stable.
                    let chunk = self.shards.len().div_ceil(threads);
                    std::thread::scope(|scope| {
                        for shard_chunk in self.shards.chunks_mut(chunk) {
                            scope.spawn(move || {
                                for s in shard_chunk {
                                    s.step_to(next);
                                }
                            });
                        }
                    });
                }
                Some(order) => {
                    let mut rank = vec![0usize; order.len()];
                    for (pos, &i) in order.iter().enumerate() {
                        rank[i] = pos;
                    }
                    let mut refs: Vec<&mut TenantShard> = self.shards.iter_mut().collect();
                    refs.sort_by_key(|s| rank[s.id as usize]);
                    if threads == 1 || refs.len() == 1 {
                        for s in refs {
                            s.step_to(next);
                        }
                    } else {
                        let chunk = refs.len().div_ceil(threads);
                        std::thread::scope(|scope| {
                            for shard_chunk in refs.chunks_mut(chunk) {
                                scope.spawn(move || {
                                    for s in shard_chunk {
                                        s.step_to(next);
                                    }
                                });
                            }
                        });
                    }
                }
            }
            now = next;
            barriers += 1;
            // Barrier-scheduled tier chaos: applied single-threaded, every
            // shard in tenant-id order per event, so the failure arrives at
            // the same virtual instant for any thread count.
            while let Some(&ev) = tier_events.get(next_tier_event).filter(|e| e.at <= now) {
                next_tier_event += 1;
                for s in self.shards.iter_mut() {
                    s.sys.apply_tier_event(ev);
                }
            }
            if ctl.cfg.enabled {
                audit_hook(&ctl.apply(&mut self.shards, false, barriers));
            }
            for s in &self.shards {
                barrier_hook(s);
            }
        }

        let mut outcomes = Vec::with_capacity(self.shards.len());
        for (i, s) in self.shards.iter_mut().enumerate() {
            let session =
                std::mem::replace(&mut s.session, DriverSession::new(DriverConfig::default()));
            let result = session.finish(&mut s.sys);
            outcomes.push(TenantOutcome {
                id: s.id,
                weight: s.weight,
                digest: s.sys.trace.digest(),
                fmar: s.sys.stats.fmar(),
                granted_slots: ctl.granted_total[i],
                max_starvation: ctl.max_starvation[i],
                result,
            });
        }
        ShardedRunResult {
            outcomes,
            shards: self.shards,
            barriers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NullPolicy;
    use tiered_mem::{PageSize, PartitionPlan, SystemConfig};
    use workloads::{PmbenchConfig, PmbenchWorkload};

    fn shard(id: u32, weight: u64, fast: u32, slow: u32, seed: u64) -> TenantShard {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(fast, slow));
        sys.enable_tracing(1 << 10);
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(256, 0.7, seed));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        TenantShard::new(
            id,
            weight,
            sys,
            vec![Box::new(w)],
            Box::new(NullPolicy),
            DriverConfig::for_secs(3600),
        )
    }

    fn build(tenants: usize, threads: usize) -> ShardedSim {
        let plan = PartitionPlan::split_even(256 * tenants as u32, 768 * tenants as u32, tenants);
        let shards = (0..tenants)
            .map(|i| {
                let p = plan.part(i);
                shard(i as u32, 1, p.fast_frames(), p.slow_frames(), i as u64)
            })
            .collect();
        let mut cfg = ShardedConfig::new(Nanos::from_millis(10));
        cfg.threads = threads;
        ShardedSim::new(cfg, shards)
    }

    #[test]
    fn sharded_run_is_thread_invariant() {
        let one = build(4, 1).run();
        let four = build(4, 4).run();
        assert_eq!(one.combined_digest(), four.combined_digest());
        assert_eq!(one.total_accesses(), four.total_accesses());
        for (a, b) in one.outcomes.iter().zip(&four.outcomes) {
            assert_eq!(a.digest, b.digest, "tenant {} diverged", a.id);
        }
    }

    #[test]
    fn single_tenant_combined_digest_is_the_tenant_digest() {
        let r = build(1, 1).run();
        assert_eq!(r.combined_digest(), r.outcomes[0].digest);
    }

    #[test]
    fn barrier_hook_sees_every_tenant_every_barrier() {
        let mut seen = Vec::new();
        let r = build(3, 2).run_with(|s| seen.push(s.id));
        assert_eq!(seen.len() as u64, 3 * r.barriers);
        // Tenant-id order inside each barrier.
        for w in seen.chunks(3) {
            assert_eq!(w, [0, 1, 2]);
        }
    }

    #[test]
    fn admission_grants_spend_the_pool_exactly_in_weighted_regime() {
        let claims = [
            SlotClaim {
                weight: 5,
                starvation: 0,
            },
            SlotClaim {
                weight: 1,
                starvation: 2,
            },
            SlotClaim {
                weight: 3,
                starvation: 0,
            },
        ];
        let grants = admission_grants(64, &claims);
        assert_eq!(grants.iter().sum::<u64>(), 64);
        assert!(grants.iter().all(|&g| g >= 1));
    }

    #[test]
    fn admission_grants_scarce_regime_serves_the_starved_first() {
        let claims: Vec<SlotClaim> = (0..8)
            .map(|i| SlotClaim {
                weight: 1,
                starvation: if i >= 6 { 3 } else { 0 },
            })
            .collect();
        let grants = admission_grants(3, &claims);
        assert_eq!(grants.iter().sum::<u64>(), 3);
        // The two starved claimants win first, then the lowest index.
        assert_eq!(grants[6], 1);
        assert_eq!(grants[7], 1);
        assert_eq!(grants[0], 1);
    }

    /// 256-seed fairness property: in the weighted regime no demanding
    /// tenant's grant falls below half its weighted fair share, grants
    /// always spend the pool exactly, and everyone gets at least one slot.
    #[test]
    fn fairness_property_weight_over_two_floor_holds_for_256_seeds() {
        let mut rng = sim_clock::DetRng::seed(0xFA1E_0007);
        for case in 0..256u64 {
            let n = 2 + rng.below(14) as usize;
            let claims: Vec<SlotClaim> = (0..n)
                .map(|_| SlotClaim {
                    weight: 1 + rng.below(100),
                    starvation: rng.below(4) as u32,
                })
                .collect();
            // Weighted-regime precondition: total ≥ 2·claims.
            let total = 2 * n as u64 + rng.below(512);
            let grants = admission_grants(total, &claims);
            assert_eq!(
                grants.iter().sum::<u64>(),
                total,
                "case {case}: pool not spent exactly"
            );
            let sum_w: u128 = claims.iter().map(|c| c.weight as u128).sum();
            for (i, (g, c)) in grants.iter().zip(&claims).enumerate() {
                assert!(*g >= 1, "case {case}: claimant {i} starved outright");
                // g ≥ target/2 ⇔ 2·g·Σw ≥ total·w (integer-exact).
                assert!(
                    2 * (*g as u128) * sum_w >= total as u128 * c.weight as u128,
                    "case {case}: claimant {i} below weight/2 floor \
                     (grant {g}, weight {}, total {total})",
                    c.weight
                );
            }
        }
    }

    /// Scarce-regime liveness: round-robin by starvation serves every
    /// demanding claimant within ⌈n/total⌉ barriers.
    #[test]
    fn fairness_property_scarce_regime_is_starvation_free() {
        let mut rng = sim_clock::DetRng::seed(0x5CA4_CE07);
        for case in 0..256u64 {
            let n = 4 + rng.below(28) as usize;
            let total = 1 + rng.below(n as u64 / 2); // strictly scarce
            let mut starvation = vec![0u32; n];
            let mut served = vec![false; n];
            let rounds = n.div_ceil(total as usize) + 1;
            for _ in 0..rounds {
                let claims: Vec<SlotClaim> = (0..n)
                    .map(|i| SlotClaim {
                        weight: 1 + (i as u64 % 5),
                        starvation: starvation[i],
                    })
                    .collect();
                let grants = admission_grants(total, &claims);
                for i in 0..n {
                    if grants[i] > 0 {
                        served[i] = true;
                        starvation[i] = 0;
                    } else {
                        starvation[i] += 1;
                    }
                }
            }
            assert!(
                served.iter().all(|&s| s),
                "case {case}: a claimant waited beyond the round-robin bound \
                 (n={n}, total={total})"
            );
        }
    }

    #[test]
    fn gini_bounds() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
        assert!(gini(&[1.0, 1.0, 1.0]).abs() < 1e-12);
        let skewed = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!(skewed > 0.7, "one-holder sample must be near 1: {skewed}");
    }
}
