//! Telescope (Nair et al., USENIX ATC '24).
//!
//! Region-based profiling for gargantuan memories: instead of tracking every
//! base page, Telescope exploits the accessed bits of *interior* page-table
//! levels — a PMD/PUD entry's accessed bit summarizes 2 MB/1 GB of address
//! space — and "telescopes" into regions that show activity, drilling from
//! coarse to fine across fixed profiling windows. Table 1 lists its
//! effective frequency scale as 0–5 accesses/sec with a 200 ms window: each
//! level of the tree still yields only accessed-or-not per window, so hot
//! and warm pages inside an active region remain indistinguishable until
//! the tree reaches leaf granularity, and the frontier budget caps how much
//! of the space can be at leaf granularity at once.
//!
//! The simulator models a three-level tree over each address space
//! (region sizes [`L2_PAGES`] → [`L1_PAGES`] → page) with a bounded
//! profiling frontier. Interior accessed bits are derived by sampling a few
//! resident pages of the region — the cost model charges only those visits,
//! which is precisely Telescope's scalability argument.

use sim_clock::Nanos;
use tiered_mem::{
    scan_budget_pages, AccessResult, MigrateMode, PageFlags, ProcessId, TierId, TieredSystem, Vpn,
};

use crate::policy::{decode_token, encode_token, TieringPolicy};

const EV_PROFILE: u16 = 1;
const EV_DEMOTE: u16 = 2;

/// Pages per level-1 region (a PMD-like 64-page granule at simulator scale).
pub const L1_PAGES: u32 = 64;
/// Pages per level-2 region (a PUD-like granule).
pub const L2_PAGES: u32 = 4096;

/// Telescope configuration.
#[derive(Debug, Clone)]
pub struct TelescopeConfig {
    /// Fixed profiling window (the paper's 200 ms, scaled).
    pub window: Nanos,
    /// Maximum tree nodes examined per window (profiling budget).
    pub frontier_budget: usize,
    /// Consecutive active windows a leaf page needs before promotion.
    pub hot_windows: u32,
    /// Demotion daemon interval.
    pub demote_interval: Nanos,
}

impl Default for TelescopeConfig {
    fn default() -> Self {
        TelescopeConfig {
            window: Nanos::from_millis(200),
            frontier_budget: 1024,
            hot_windows: 2,
            demote_interval: Nanos::from_secs(2),
        }
    }
}

/// A node in the profiling frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Node {
    pid: ProcessId,
    /// First page of the region.
    start: Vpn,
    /// Region size in pages (L2, L1, or 1).
    pages: u32,
    /// Consecutive windows this node was observed active.
    active_windows: u32,
}

/// The Telescope baseline policy.
pub struct Telescope {
    cfg: TelescopeConfig,
    frontier: Vec<Node>,
}

impl Telescope {
    /// Creates the policy.
    pub fn new(cfg: TelescopeConfig) -> Telescope {
        Telescope {
            cfg,
            frontier: Vec::new(),
        }
    }

    /// Current frontier size (diagnostic).
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }

    /// Checks (and clears) whether any page of the region was accessed since
    /// the last profile, by sampling resident pages. Interior accessed bits
    /// summarize their subtree, so a handful of probes suffices; the cost is
    /// charged per visited PTE.
    fn region_active(sys: &mut TieredSystem, node: &Node) -> bool {
        let mut active = false;
        let step = (node.pages / 16).max(1);
        let mut visited = 0u64;
        let space_pages = sys.process(node.pid).space.pages();
        let mut v = node.start.0;
        let end = (node.start.0 + node.pages).min(space_pages);
        while v < end {
            visited += 1;
            let e = sys.process_mut(node.pid).space.entry_mut(Vpn(v));
            if e.present() && e.flags.has(PageFlags::ACCESSED) {
                // Clear only at leaf granularity; interior "bits" are
                // summaries and clearing one page per granule models the
                // interior-entry clear.
                e.flags.clear(PageFlags::ACCESSED);
                active = true;
                if node.pages > 1 {
                    break;
                }
            }
            v += step;
        }
        sys.stats.scanned_ptes += visited;
        sys.stats.kernel_time += Nanos(120).scale(visited.max(1));
        active
    }

    fn profile(&mut self, sys: &mut TieredSystem) {
        if self.frontier.is_empty() {
            // Seed with the coarsest regions of every process.
            for pid in sys.pids().collect::<Vec<_>>() {
                let pages = sys.process(pid).space.pages();
                let mut start = 0;
                while start < pages {
                    self.frontier.push(Node {
                        pid,
                        start: Vpn(start),
                        pages: L2_PAGES.min(pages - start),
                        active_windows: 0,
                    });
                    start += L2_PAGES;
                }
            }
        }

        let mut next: Vec<Node> = Vec::with_capacity(self.frontier.len());
        let mut promote: Vec<(ProcessId, Vpn)> = Vec::new();
        let frontier = std::mem::take(&mut self.frontier);
        let mut budget = self.cfg.frontier_budget;

        for mut node in frontier {
            if budget == 0 {
                // Out of budget: keep the node unexamined for next window.
                next.push(node);
                continue;
            }
            budget -= 1;
            let active = Self::region_active(sys, &node);
            if !active {
                // Cold: collapse one level up by merging (approximated by
                // resetting to the coarse region), dropping leaf detail.
                node.active_windows = 0;
                if node.pages == 1 || node.pages == L1_PAGES {
                    // Re-aggregate into its L2 region; dedup below.
                    let l2_start = Vpn(node.start.0 / L2_PAGES * L2_PAGES);
                    if !next
                        .iter()
                        .any(|n| n.pid == node.pid && n.start == l2_start && n.pages >= L1_PAGES)
                    {
                        next.push(Node {
                            pid: node.pid,
                            start: l2_start,
                            pages: L2_PAGES,
                            active_windows: 0,
                        });
                    }
                } else {
                    next.push(node);
                }
                continue;
            }
            node.active_windows += 1;
            if node.pages > L1_PAGES {
                // Drill down into L1 children.
                let mut s = node.start.0;
                let end = node.start.0 + node.pages;
                while s < end {
                    next.push(Node {
                        pid: node.pid,
                        start: Vpn(s),
                        pages: L1_PAGES.min(end - s),
                        active_windows: 0,
                    });
                    s += L1_PAGES;
                }
            } else if node.pages > 1 {
                // Drill down into leaf pages.
                for off in 0..node.pages {
                    next.push(Node {
                        pid: node.pid,
                        start: Vpn(node.start.0 + off),
                        pages: 1,
                        active_windows: 0,
                    });
                }
            } else {
                // Leaf: promote after enough consecutive active windows.
                if node.active_windows >= self.cfg.hot_windows {
                    promote.push((node.pid, node.start));
                    node.active_windows = 0;
                }
                next.push(node);
            }
        }

        // Keep the frontier bounded: prefer fine-grained (hot) nodes.
        next.sort_by_key(|n| n.pages);
        next.truncate(self.cfg.frontier_budget * 4);
        self.frontier = next;

        for (pid, vpn) in promote {
            let pte = sys.process(pid).space.pte_page(vpn);
            if sys.process(pid).space.entry(pte).present()
                && sys.process(pid).space.entry(pte).tier() == TierId::SLOW
            {
                let _ = sys.promote_with_reclaim(pid, pte, MigrateMode::Async);
            }
        }
    }
}

impl TieringPolicy for Telescope {
    fn name(&self) -> &'static str {
        "Telescope"
    }

    fn init(&mut self, sys: &mut TieredSystem) {
        self.frontier.clear();
        sys.schedule_in(self.cfg.window, encode_token(EV_PROFILE, 0, 0));
        sys.schedule_in(self.cfg.demote_interval, encode_token(EV_DEMOTE, 0, 0));
    }

    fn on_event(&mut self, sys: &mut TieredSystem, token: u64) {
        let (kind, _, _) = decode_token(token);
        match kind {
            EV_PROFILE => {
                self.profile(sys);
                sys.schedule_in(self.cfg.window, encode_token(EV_PROFILE, 0, 0));
            }
            EV_DEMOTE => {
                let age_budget = scan_budget_pages(
                    sys.total_frames(TierId::FAST),
                    self.cfg.demote_interval,
                    Nanos(self.cfg.window.as_nanos().saturating_mul(8)),
                );
                sys.age_active_list(TierId::FAST, age_budget.max(16));
                let mut budget = 128u32;
                while sys.free_frames(TierId::FAST) < sys.watermarks.high && budget > 0 {
                    budget -= 1;
                    match sys.pop_inactive_victim(TierId::FAST) {
                        Some((pid, vpn)) => {
                            let _ = sys.migrate(pid, vpn, TierId::SLOW, MigrateMode::Async);
                        }
                        None => break,
                    }
                }
                sys.trace_period(Default::default());
                sys.schedule_in(self.cfg.demote_interval, encode_token(EV_DEMOTE, 0, 0));
            }
            _ => unreachable!("unknown Telescope event {}", kind),
        }
    }

    fn on_hint_fault(
        &mut self,
        _sys: &mut TieredSystem,
        _pid: ProcessId,
        _vpn: Vpn,
        _write: bool,
        _res: &AccessResult,
    ) {
        // Telescope profiles with accessed bits only; no PTE poisoning.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DriverConfig, SimulationDriver};
    use tiered_mem::{PageSize, SystemConfig};
    use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

    fn run_ts(run_ms: u64) -> (TieredSystem, Telescope) {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(1024, 4096));
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = Telescope::new(TelescopeConfig {
            window: Nanos::from_millis(10),
            frontier_budget: 512,
            hot_windows: 2,
            demote_interval: Nanos::from_millis(25),
        });
        SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(run_ms),
            ..Default::default()
        })
        .run(&mut sys, &mut wls, &mut policy);
        (sys, policy)
    }

    #[test]
    fn no_hint_faults() {
        let (sys, _) = run_ts(200);
        assert_eq!(sys.stats.hint_faults, 0);
    }

    #[test]
    fn drills_down_and_promotes() {
        let (sys, policy) = run_ts(500);
        assert!(sys.stats.promoted_pages > 0, "no promotions");
        assert!(policy.frontier_len() > 0, "frontier vanished");
    }

    #[test]
    fn profiling_cost_is_region_bounded() {
        // Telescope's pitch: profiling cost scales with the frontier, not
        // the address space. The scanned-PTE count per window must stay far
        // below a full-space scan.
        let (sys, _) = run_ts(300);
        let windows = 300 / 10;
        let per_window = sys.stats.scanned_ptes / windows;
        assert!(
            per_window < 4096 / 2,
            "profiled {} PTEs per window for a 4096-page space",
            per_window
        );
    }

    #[test]
    fn improves_fmar_over_static() {
        let (sys, _) = run_ts(600);
        assert!(sys.stats.fmar() > 0.3, "fmar {}", sys.stats.fmar());
    }
}
