//! TPP — Transparent Page Placement (Maruf et al., ASPLOS '23).
//!
//! Combines NUMA hint faults with an LRU *recency* gate: a slow-tier page is
//! promoted only if it is already on the active LRU list (i.e., it has shown
//! recent reuse); a first fault merely activates it. TPP also decouples
//! allocation from reclaim with proactive, watermark-driven demotion of
//! inactive fast-tier pages, so promotions usually find free frames. The
//! promotion criterion is still "faulted + recently used" — a 0–2
//! accesses/minute resolution per Table 1 — so warm and hot pages remain
//! indistinguishable.

use sim_clock::Nanos;
use tiered_mem::{
    scan_budget_pages, AccessResult, LruKind, MigrateMode, PageFlags, ProcessId, TierId,
    TieredSystem, Vpn,
};

use crate::policy::{decode_token, encode_token, ScanCursor, TieringPolicy};

const EV_SCAN: u16 = 1;
const EV_DEMOTE: u16 = 2;

/// TPP configuration.
#[derive(Debug, Clone)]
pub struct TppConfig {
    /// NUMA scan period (slow tier only — TPP's scan optimization).
    pub scan_period: Nanos,
    /// Pages marked per scan event.
    pub scan_step_pages: u32,
    /// Demotion daemon interval (kswapd-style).
    pub demote_interval: Nanos,
}

impl Default for TppConfig {
    fn default() -> Self {
        TppConfig {
            scan_period: Nanos::from_secs(60),
            scan_step_pages: 4096,
            demote_interval: Nanos::from_secs(2),
        }
    }
}

/// The TPP baseline policy.
///
/// Over a longer tier chain the mechanism generalizes hop-wise: the scan
/// poisons every non-top managed tier, a recency-gated fault promotes the
/// page one hop toward the top, and the demotion daemon runs per tier,
/// pushing inactive pages one hop down — the cascaded shape Meta describes
/// for multi-NUMA-class systems.
pub struct Tpp {
    cfg: TppConfig,
    cursors: Vec<ScanCursor>,
    /// Managed tiers the policy operates across (2 = classic TPP).
    tiers: usize,
}

impl Tpp {
    /// Creates the classic two-tier policy.
    pub fn new(cfg: TppConfig) -> Tpp {
        Tpp::for_tiers(cfg, 2)
    }

    /// Creates the policy over `tiers` managed tiers.
    pub fn for_tiers(cfg: TppConfig, tiers: usize) -> Tpp {
        assert!(
            (2..=tiered_mem::MAX_TIERS).contains(&tiers),
            "TPP needs 2..={} managed tiers, got {tiers}",
            tiered_mem::MAX_TIERS
        );
        Tpp {
            cfg,
            cursors: Vec::new(),
            tiers,
        }
    }
}

impl TieringPolicy for Tpp {
    fn name(&self) -> &'static str {
        match self.tiers {
            2 => "TPP",
            3 => "TPP-3",
            _ => "TPP-N",
        }
    }

    fn init(&mut self, sys: &mut TieredSystem) {
        self.cursors.clear();
        for pid in sys.pids().collect::<Vec<_>>() {
            let pages = sys.process(pid).space.pages();
            let cursor = ScanCursor::new(pages, self.cfg.scan_step_pages, self.cfg.scan_period);
            sys.schedule_in(cursor.event_interval, encode_token(EV_SCAN, pid.0, 0));
            self.cursors.push(cursor);
        }
        sys.schedule_in(self.cfg.demote_interval, encode_token(EV_DEMOTE, 0, 0));
    }

    fn on_event(&mut self, sys: &mut TieredSystem, token: u64) {
        let (kind, pid_raw, _) = decode_token(token);
        match kind {
            EV_SCAN => {
                let pid = ProcessId(pid_raw);
                let cur = &mut self.cursors[pid_raw as usize];
                let mut visited = 0u64;
                cur.cursor =
                    sys.process_mut(pid)
                        .space
                        .walk_range(cur.cursor, cur.step_pages, |_vpn, e| {
                            visited += 1;
                            // TPP only poisons CPU-less-node (non-top) pages,
                            // halving scan-fault overhead vs. vanilla NB.
                            if e.tier() != TierId::FAST {
                                e.flags.set(PageFlags::PROT_NONE);
                            }
                        });
                sys.charge_scan(pid, visited.max(1));
                let interval = cur.event_interval;
                sys.schedule_in(interval, encode_token(EV_SCAN, pid.0, 0));
            }
            EV_DEMOTE => {
                // Cascaded demotion daemon, top tier down: each non-terminal
                // tier ages its LRU at scan-period timescale, then pushes
                // inactive pages one hop down to hold free-frame headroom.
                for t in 0..(self.tiers - 1) as u8 {
                    let tier = TierId(t);
                    let age_budget = scan_budget_pages(
                        sys.total_frames(tier),
                        self.cfg.demote_interval,
                        self.cfg.scan_period,
                    );
                    sys.age_active_list(tier, age_budget.max(16));
                    // The system watermarks are sized for the top tier;
                    // deeper tiers hold a fixed 1/32 headroom instead.
                    let high = if t == 0 {
                        sys.watermarks.high
                    } else {
                        (sys.total_frames(tier) / 32).max(1)
                    };
                    let mut budget = 256u32;
                    while sys.free_frames(tier) < high && budget > 0 {
                        budget -= 1;
                        match sys.pop_inactive_victim(tier) {
                            Some((pid, vpn)) => {
                                let _ = sys.migrate(pid, vpn, TierId(t + 1), MigrateMode::Async);
                            }
                            None => break,
                        }
                    }
                }
                sys.trace_period(Default::default());
                sys.schedule_in(self.cfg.demote_interval, encode_token(EV_DEMOTE, 0, 0));
            }
            _ => unreachable!("unknown TPP event {}", kind),
        }
    }

    fn on_hint_fault(
        &mut self,
        sys: &mut TieredSystem,
        pid: ProcessId,
        vpn: Vpn,
        _write: bool,
        _res: &AccessResult,
    ) {
        let pte = sys.process(pid).space.pte_page(vpn);
        let e = sys.process(pid).space.entry(pte);
        let t = e.tier();
        if t == TierId::FAST {
            return;
        }
        if e.flags.has(PageFlags::LRU_ACTIVE) {
            // Recency gate passed: the page was already activated by a prior
            // fault, so this is its second observed touch — promote one hop
            // toward the top.
            let dest = TierId(t.0 - 1);
            let _ = sys.promote_with_reclaim_to(pid, pte, dest, MigrateMode::Sync(pid));
        } else {
            // First observed touch: activate, don't promote yet.
            sys.lru_insert(pid, pte, LruKind::Active);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DriverConfig, SimulationDriver};
    use tiered_mem::{PageSize, SystemConfig};
    use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

    fn run_tpp(run_ms: u64) -> TieredSystem {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(1024, 4096));
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = Tpp::new(TppConfig {
            scan_period: Nanos::from_millis(40),
            scan_step_pages: 512,
            demote_interval: Nanos::from_millis(20),
        });
        SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(run_ms),
            ..Default::default()
        })
        .run(&mut sys, &mut wls, &mut policy);
        sys
    }

    #[test]
    fn scans_only_poison_slow_pages() {
        // Fast-tier pages never hint-fault under TPP, so hint faults must be
        // well below what Linux-NB (which marks everything) generates.
        let tpp = run_tpp(300);
        let nb = {
            let mut sys = TieredSystem::new(SystemConfig::dram_pmem(1024, 4096));
            let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
            sys.add_process(w.address_space_pages(), PageSize::Base);
            let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
            let mut policy =
                crate::linux_nb::LinuxNumaBalancing::new(crate::linux_nb::LinuxNbConfig {
                    scan_period: Nanos::from_millis(40),
                    scan_step_pages: 512,
                    promote_tier_frac_per_period: 0.23,
                });
            SimulationDriver::new(DriverConfig {
                run_for: Nanos::from_millis(300),
                ..Default::default()
            })
            .run(&mut sys, &mut wls, &mut policy);
            sys
        };
        assert!(
            tpp.stats.hint_faults < nb.stats.hint_faults,
            "TPP {} vs NB {}",
            tpp.stats.hint_faults,
            nb.stats.hint_faults
        );
    }

    #[test]
    fn two_touch_gate_reduces_promotions() {
        let sys = run_tpp(300);
        // Promotions happen, but each requires two faults, so the count is
        // below the slow-tier hint-fault count.
        assert!(sys.stats.promoted_pages > 0);
        assert!(sys.stats.promoted_pages < sys.stats.hint_faults);
    }

    #[test]
    fn proactive_demotion_keeps_headroom() {
        let sys = run_tpp(500);
        assert!(
            sys.free_frames(TierId::FAST) > 0,
            "demotion daemon should maintain free frames"
        );
        assert!(sys.stats.demoted_pages > 0);
    }

    #[test]
    fn three_tier_tpp_populates_every_tier() {
        let mut sys = TieredSystem::new(SystemConfig::three_tier(768, 1536, 4096));
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = Tpp::for_tiers(
            TppConfig {
                scan_period: Nanos::from_millis(40),
                scan_step_pages: 512,
                demote_interval: Nanos::from_millis(20),
            },
            3,
        );
        assert_eq!(policy.name(), "TPP-3");
        SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(500),
            ..Default::default()
        })
        .run(&mut sys, &mut wls, &mut policy);
        assert!(sys.stats.promoted_pages > 0);
        assert!(sys.stats.demoted_pages > 0);
        for t in 0..3 {
            assert!(sys.used_frames(TierId(t)) > 0, "tier {t} empty");
        }
    }
}
