//! Stable trace digests for determinism and golden-snapshot checks.
//!
//! A digest folds every recorded period sample and ring event into one
//! 64-bit FNV-1a hash over a fixed byte encoding: integers as little-endian
//! `u64`, floats via `f64::to_bits` (bit-exact, so two runs match only if
//! every float matches), enum variants by a stable tag. Two runs of the same
//! seeded simulation must produce identical digests; any divergence —
//! `HashMap` iteration order leaking into decisions, a nondeterministic
//! tie-break — flips the hash.

use sim_clock::Nanos;

use crate::event::{MigrateDir, TraceEvent};
use crate::period::PeriodSample;

/// Incremental 64-bit FNV-1a hasher over a stable encoding.
#[derive(Debug, Clone, Copy)]
pub struct TraceDigest(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Stable tag for a migration direction.
fn dir_tag(dir: MigrateDir) -> u64 {
    match dir {
        MigrateDir::Promote => 0,
        MigrateDir::Demote => 1,
    }
}

impl Default for TraceDigest {
    fn default() -> TraceDigest {
        TraceDigest::new()
    }
}

impl TraceDigest {
    /// Starts a digest at the FNV offset basis.
    pub fn new() -> TraceDigest {
        TraceDigest(FNV_OFFSET)
    }

    /// Folds raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a `u64` as 8 little-endian bytes.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Folds an `f64` bit-exactly.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Folds a boolean.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u64(v as u64)
    }

    /// Folds a timestamp.
    pub fn nanos(&mut self, v: Nanos) -> &mut Self {
        self.u64(v.as_nanos())
    }

    /// The current hash value.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// The hash as a fixed-width lower-case hex string.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Folds one period sample (every field, fixed order).
    pub fn period(&mut self, s: &PeriodSample) -> &mut Self {
        self.nanos(s.timestamp)
            .nanos(s.policy.cit_threshold)
            .u64(s.policy.rate_limit_bps)
            .u64(s.policy.queue_depth)
            .u64(s.policy.enqueued_pages)
            .u64(s.policy.dequeued_pages)
            .u64(s.policy.dropped_pages)
            .f64(s.policy.heat_overlap_ratio)
            .u64(s.promoted_pages)
            .u64(s.demoted_pages)
            .u64(s.thrash_events)
            .u64(s.hint_faults)
            .f64(s.period_fmar)
            .f64(s.fmar)
            .u64(s.fast_used_frames)
            .u64(s.slow_used_frames)
            .u64(s.in_flight_migrations)
            .u64(s.quarantined_frames)
            .u64(s.offlined_frames);
        // Folded only when some tier is unhealthy: an all-Online gauge packs
        // to 0 and is skipped, keeping every pre-existing fault-free digest
        // byte-identical.
        if s.tier_health != 0 {
            self.u64(s.tier_health as u64);
        }
        self
    }

    /// Folds one discrete event with its timestamp and a per-variant tag.
    pub fn event(&mut self, at: Nanos, ev: &TraceEvent) -> &mut Self {
        self.nanos(at);
        match *ev {
            TraceEvent::Scan { pid, visited } => {
                self.u64(1).u64(pid as u64).u64(visited);
            }
            TraceEvent::HintFault {
                pid,
                vpn,
                cit,
                below_threshold,
            } => {
                self.u64(2)
                    .u64(pid as u64)
                    .u64(vpn as u64)
                    .nanos(cit)
                    .bool(below_threshold);
            }
            TraceEvent::Enqueue { pid, vpn, pages } => {
                self.u64(3)
                    .u64(pid as u64)
                    .u64(vpn as u64)
                    .u64(pages as u64);
            }
            TraceEvent::MigrateComplete {
                pid,
                vpn,
                pages,
                dir,
            } => {
                self.u64(4)
                    .u64(pid as u64)
                    .u64(vpn as u64)
                    .u64(pages as u64)
                    .u64(dir_tag(dir));
            }
            TraceEvent::MigrateBegin {
                pid,
                vpn,
                pages,
                dir,
            } => {
                self.u64(8)
                    .u64(pid as u64)
                    .u64(vpn as u64)
                    .u64(pages as u64)
                    .u64(dir_tag(dir));
            }
            TraceEvent::MigrateAbort {
                pid,
                vpn,
                pages,
                dir,
            } => {
                self.u64(9)
                    .u64(pid as u64)
                    .u64(vpn as u64)
                    .u64(pages as u64)
                    .u64(dir_tag(dir));
            }
            TraceEvent::Thrash { pages } => {
                self.u64(5).u64(pages);
            }
            TraceEvent::Tune {
                cit_threshold,
                rate_limit_bps,
            } => {
                self.u64(6).nanos(cit_threshold).u64(rate_limit_bps);
            }
            TraceEvent::DcscOverlap {
                cutoff_bucket,
                misplaced_pages,
                misplacement_ratio,
            } => {
                self.u64(7)
                    .u64(cutoff_bucket as u64)
                    .f64(misplaced_pages)
                    .f64(misplacement_ratio);
            }
            TraceEvent::CopyFault {
                pid,
                vpn,
                pages,
                dir,
                transient,
            } => {
                self.u64(10)
                    .u64(pid as u64)
                    .u64(vpn as u64)
                    .u64(pages as u64)
                    .u64(dir_tag(dir))
                    .bool(transient);
            }
            TraceEvent::Quarantine { tier, pfn } => {
                self.u64(11).u64(tier as u64).u64(pfn as u64);
            }
            TraceEvent::FramePoison { pid, vpn } => {
                self.u64(12).u64(pid as u64).u64(vpn as u64);
            }
            TraceEvent::Capacity {
                tier,
                offlined,
                restored,
                usable,
            } => {
                self.u64(13)
                    .u64(tier as u64)
                    .u64(offlined as u64)
                    .u64(restored as u64)
                    .u64(usable as u64);
            }
            TraceEvent::Retry { pid, vpn, attempt } => {
                self.u64(14)
                    .u64(pid as u64)
                    .u64(vpn as u64)
                    .u64(attempt as u64);
            }
            TraceEvent::Breaker {
                open,
                failure_ratio,
            } => {
                self.u64(15).bool(open).f64(failure_ratio);
            }
            TraceEvent::Admission {
                tenant,
                granted,
                in_flight,
                starvation,
            } => {
                self.u64(16)
                    .u64(tenant as u64)
                    .u64(granted as u64)
                    .u64(in_flight as u64)
                    .u64(starvation as u64);
            }
            TraceEvent::TierHealth { tier, state } => {
                self.u64(17).u64(tier as u64).u64(state as u64);
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vector() {
        // FNV-1a 64 of "a" is a published vector.
        let mut d = TraceDigest::new();
        d.bytes(b"a");
        assert_eq!(d.value(), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn field_order_matters() {
        let mut a = TraceDigest::new();
        a.u64(1).u64(2);
        let mut b = TraceDigest::new();
        b.u64(2).u64(1);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn float_bits_are_exact() {
        let mut a = TraceDigest::new();
        a.f64(0.1 + 0.2);
        let mut b = TraceDigest::new();
        b.f64(0.3);
        assert_ne!(a.value(), b.value(), "0.1+0.2 != 0.3 bit-wise");
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(TraceDigest::new().hex().len(), 16);
    }

    #[test]
    fn event_variants_hash_distinctly() {
        let evs = [
            TraceEvent::Scan { pid: 0, visited: 0 },
            TraceEvent::Thrash { pages: 0 },
            TraceEvent::Enqueue {
                pid: 0,
                vpn: 0,
                pages: 0,
            },
        ];
        let mut seen = Vec::new();
        for ev in &evs {
            let mut d = TraceDigest::new();
            d.event(Nanos(0), ev);
            seen.push(d.value());
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), evs.len());
    }
}
