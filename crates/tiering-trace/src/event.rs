//! Discrete trace events.

use sim_clock::Nanos;

use crate::export::JsonWriter;

/// Direction of a migration event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateDir {
    /// Slow → fast.
    Promote,
    /// Fast → slow.
    Demote,
}

impl MigrateDir {
    /// Lower-case label used in exports.
    pub fn label(&self) -> &'static str {
        match self {
            MigrateDir::Promote => "promote",
            MigrateDir::Demote => "demote",
        }
    }
}

/// One discrete policy/substrate event.
///
/// Events are cheap POD values; anything that would need allocation
/// (labels, maps) is reduced to scalars at the emit site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A ticking-scan chunk completed: `visited` PTEs walked for `pid`.
    Scan {
        /// Scanned process.
        pid: u16,
        /// PTE entries visited in this chunk.
        visited: u64,
    },
    /// A hint fault was classified: the measured CIT and whether it fell
    /// below the active threshold.
    HintFault {
        /// Faulting process.
        pid: u16,
        /// Faulting virtual page.
        vpn: u32,
        /// Measured CIT.
        cit: Nanos,
        /// `cit <= threshold` at classification time.
        below_threshold: bool,
    },
    /// A page passed candidate filtering and entered the promotion queue.
    Enqueue {
        /// Owning process.
        pid: u16,
        /// PTE page (base page or huge-block head).
        vpn: u32,
        /// Base pages the promotion will move.
        pages: u32,
    },
    /// A two-phase migration transaction opened: destination frames
    /// reserved, copy enqueued on the destination tier's bandwidth FIFO.
    MigrateBegin {
        /// Owning process.
        pid: u16,
        /// PTE page.
        vpn: u32,
        /// Base pages in flight.
        pages: u32,
        /// Promotion or demotion.
        dir: MigrateDir,
    },
    /// An in-flight migration aborted (write hit the unit mid-copy, or the
    /// unit was split/swapped out); the reservation was released.
    MigrateAbort {
        /// Owning process.
        pid: u16,
        /// PTE page.
        vpn: u32,
        /// Base pages whose reservation was released.
        pages: u32,
        /// Direction of the aborted transaction.
        dir: MigrateDir,
    },
    /// A migration completed: the PTE flipped to the reserved frames.
    MigrateComplete {
        /// Owning process.
        pid: u16,
        /// PTE page.
        vpn: u32,
        /// Base pages moved.
        pages: u32,
        /// Promotion or demotion.
        dir: MigrateDir,
    },
    /// The thrashing monitor flagged a re-promoted recently-demoted page.
    Thrash {
        /// Base pages involved.
        pages: u64,
    },
    /// A tune period ran: the control state it settled on.
    Tune {
        /// CIT threshold after the update.
        cit_threshold: Nanos,
        /// Promotion rate limit after the update (bytes/second).
        rate_limit_bps: u64,
    },
    /// DCSC compared the per-tier heat maps.
    DcscOverlap {
        /// Bucket index of the overlap point.
        cutoff_bucket: u32,
        /// Estimated misplaced slow-tier pages.
        misplaced_pages: f64,
        /// Misplaced pages over fast-tier capacity.
        misplacement_ratio: f64,
    },
    /// A due migration copy failed (fault injection): the reservation was
    /// released and the source mapping stayed authoritative.
    CopyFault {
        /// Owning process.
        pid: u16,
        /// PTE page of the failed unit.
        vpn: u32,
        /// Base pages the transaction covered.
        pages: u32,
        /// Direction of the failed copy.
        dir: MigrateDir,
        /// Retryable (`true`) or permanent with a poisoned frame (`false`).
        transient: bool,
    },
    /// A frame was permanently quarantined after an uncorrectable error.
    Quarantine {
        /// Tier index of the quarantined frame.
        tier: u8,
        /// The frame number.
        pfn: u32,
    },
    /// A resident page's frame took an uncorrectable error: the page was
    /// marked poisoned and awaits soft-offline migration.
    FramePoison {
        /// Owning process.
        pid: u16,
        /// The poisoned page.
        vpn: u32,
    },
    /// Tier capacity changed (hotplug): frames offlined or restored.
    Capacity {
        /// Tier index whose capacity changed.
        tier: u8,
        /// Frames taken out of service by this event.
        offlined: u32,
        /// Frames brought back into service by this event.
        restored: u32,
        /// Usable frames in the tier after the event.
        usable: u32,
    },
    /// The policy re-tried a previously failed or deferred promotion.
    Retry {
        /// Owning process.
        pid: u16,
        /// The retried page.
        vpn: u32,
        /// Retry attempt number (1 = first retry).
        attempt: u32,
    },
    /// The promotion circuit breaker changed state.
    Breaker {
        /// `true` when the breaker opened (promotions paused).
        open: bool,
        /// Recent migration-failure ratio that drove the transition.
        failure_ratio: f64,
    },
    /// The multi-tenant admission hook granted a tenant its migration-slot
    /// share for the next barrier interval. Emitted into the tenant's own
    /// trace, only when the hook is enabled — hook-off runs record the same
    /// event stream they always did.
    Admission {
        /// Tenant the grant applies to.
        tenant: u32,
        /// In-flight migration slots granted until the next barrier.
        granted: u32,
        /// Migrations still in flight at grant time.
        in_flight: u32,
        /// Consecutive barriers this tenant had demand but won zero spare
        /// slots (0 when it was served).
        starvation: u32,
    },
    /// A tier's health state changed (failure-domain lifecycle). Emitted
    /// only on chaos runs that schedule tier events; fault-free runs never
    /// record it, so their digests are untouched.
    TierHealth {
        /// Tier whose health changed.
        tier: u8,
        /// Dense health-state code (0 = Online).
        state: u8,
    },
}

impl TraceEvent {
    /// Stable event-kind label used in exports.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Scan { .. } => "scan",
            TraceEvent::HintFault { .. } => "hint_fault",
            TraceEvent::Enqueue { .. } => "enqueue",
            TraceEvent::MigrateBegin { .. } => "migrate_begin",
            TraceEvent::MigrateAbort { .. } => "migrate_abort",
            TraceEvent::MigrateComplete { .. } => "migrate_complete",
            TraceEvent::Thrash { .. } => "thrash",
            TraceEvent::Tune { .. } => "tune",
            TraceEvent::DcscOverlap { .. } => "dcsc_overlap",
            TraceEvent::CopyFault { .. } => "copy_fault",
            TraceEvent::Quarantine { .. } => "quarantine",
            TraceEvent::FramePoison { .. } => "frame_poison",
            TraceEvent::Capacity { .. } => "capacity",
            TraceEvent::Retry { .. } => "retry",
            TraceEvent::Breaker { .. } => "breaker",
            TraceEvent::Admission { .. } => "admission",
            TraceEvent::TierHealth { .. } => "tier_health",
        }
    }

    /// Writes the event's fields (excluding timestamp/kind) into `w`.
    pub(crate) fn write_fields(&self, w: &mut JsonWriter) {
        match *self {
            TraceEvent::Scan { pid, visited } => {
                w.field_u64("pid", pid as u64);
                w.field_u64("visited", visited);
            }
            TraceEvent::HintFault {
                pid,
                vpn,
                cit,
                below_threshold,
            } => {
                w.field_u64("pid", pid as u64);
                w.field_u64("vpn", vpn as u64);
                w.field_u64("cit_ns", cit.as_nanos());
                w.field_bool("below_threshold", below_threshold);
            }
            TraceEvent::Enqueue { pid, vpn, pages } => {
                w.field_u64("pid", pid as u64);
                w.field_u64("vpn", vpn as u64);
                w.field_u64("pages", pages as u64);
            }
            TraceEvent::MigrateBegin {
                pid,
                vpn,
                pages,
                dir,
            }
            | TraceEvent::MigrateAbort {
                pid,
                vpn,
                pages,
                dir,
            }
            | TraceEvent::MigrateComplete {
                pid,
                vpn,
                pages,
                dir,
            } => {
                w.field_u64("pid", pid as u64);
                w.field_u64("vpn", vpn as u64);
                w.field_u64("pages", pages as u64);
                w.field_str("dir", dir.label());
            }
            TraceEvent::Thrash { pages } => {
                w.field_u64("pages", pages);
            }
            TraceEvent::Tune {
                cit_threshold,
                rate_limit_bps,
            } => {
                w.field_u64("cit_threshold_ns", cit_threshold.as_nanos());
                w.field_u64("rate_limit_bps", rate_limit_bps);
            }
            TraceEvent::DcscOverlap {
                cutoff_bucket,
                misplaced_pages,
                misplacement_ratio,
            } => {
                w.field_u64("cutoff_bucket", cutoff_bucket as u64);
                w.field_f64("misplaced_pages", misplaced_pages);
                w.field_f64("misplacement_ratio", misplacement_ratio);
            }
            TraceEvent::CopyFault {
                pid,
                vpn,
                pages,
                dir,
                transient,
            } => {
                w.field_u64("pid", pid as u64);
                w.field_u64("vpn", vpn as u64);
                w.field_u64("pages", pages as u64);
                w.field_str("dir", dir.label());
                w.field_bool("transient", transient);
            }
            TraceEvent::Quarantine { tier, pfn } => {
                w.field_u64("tier", tier as u64);
                w.field_u64("pfn", pfn as u64);
            }
            TraceEvent::FramePoison { pid, vpn } => {
                w.field_u64("pid", pid as u64);
                w.field_u64("vpn", vpn as u64);
            }
            TraceEvent::Capacity {
                tier,
                offlined,
                restored,
                usable,
            } => {
                w.field_u64("tier", tier as u64);
                w.field_u64("offlined", offlined as u64);
                w.field_u64("restored", restored as u64);
                w.field_u64("usable", usable as u64);
            }
            TraceEvent::Retry { pid, vpn, attempt } => {
                w.field_u64("pid", pid as u64);
                w.field_u64("vpn", vpn as u64);
                w.field_u64("attempt", attempt as u64);
            }
            TraceEvent::Breaker {
                open,
                failure_ratio,
            } => {
                w.field_bool("open", open);
                w.field_f64("failure_ratio", failure_ratio);
            }
            TraceEvent::Admission {
                tenant,
                granted,
                in_flight,
                starvation,
            } => {
                w.field_u64("tenant", tenant as u64);
                w.field_u64("granted", granted as u64);
                w.field_u64("in_flight", in_flight as u64);
                w.field_u64("starvation", starvation as u64);
            }
            TraceEvent::TierHealth { tier, state } => {
                w.field_u64("tier", tier as u64);
                w.field_u64("state", state as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_labels() {
        let evs = [
            TraceEvent::Scan { pid: 0, visited: 1 },
            TraceEvent::HintFault {
                pid: 0,
                vpn: 0,
                cit: Nanos(1),
                below_threshold: true,
            },
            TraceEvent::Enqueue {
                pid: 0,
                vpn: 0,
                pages: 1,
            },
            TraceEvent::MigrateBegin {
                pid: 0,
                vpn: 0,
                pages: 1,
                dir: MigrateDir::Promote,
            },
            TraceEvent::MigrateAbort {
                pid: 0,
                vpn: 0,
                pages: 1,
                dir: MigrateDir::Promote,
            },
            TraceEvent::MigrateComplete {
                pid: 0,
                vpn: 0,
                pages: 1,
                dir: MigrateDir::Promote,
            },
            TraceEvent::Thrash { pages: 1 },
            TraceEvent::Tune {
                cit_threshold: Nanos(1),
                rate_limit_bps: 1,
            },
            TraceEvent::DcscOverlap {
                cutoff_bucket: 0,
                misplaced_pages: 0.0,
                misplacement_ratio: 0.0,
            },
            TraceEvent::CopyFault {
                pid: 0,
                vpn: 0,
                pages: 1,
                dir: MigrateDir::Promote,
                transient: true,
            },
            TraceEvent::Quarantine { tier: 0, pfn: 0 },
            TraceEvent::FramePoison { pid: 0, vpn: 0 },
            TraceEvent::Capacity {
                tier: 0,
                offlined: 1,
                restored: 0,
                usable: 1,
            },
            TraceEvent::Retry {
                pid: 0,
                vpn: 0,
                attempt: 1,
            },
            TraceEvent::Breaker {
                open: true,
                failure_ratio: 0.5,
            },
            TraceEvent::Admission {
                tenant: 0,
                granted: 1,
                in_flight: 0,
                starvation: 0,
            },
            TraceEvent::TierHealth { tier: 1, state: 3 },
        ];
        let mut kinds: Vec<&str> = evs.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), evs.len());
    }

    #[test]
    fn migrate_dir_labels() {
        assert_eq!(MigrateDir::Promote.label(), "promote");
        assert_eq!(MigrateDir::Demote.label(), "demote");
    }
}
