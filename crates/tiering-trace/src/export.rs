//! Dependency-free JSON/CSV rendering.
//!
//! The repository builds in offline environments with no registry access,
//! so serialization is hand-rolled: a tiny [`JsonWriter`] emits the small,
//! flat schema the trace layer needs (objects of scalar fields inside
//! arrays) with correct escaping and comma placement.

use sim_clock::Nanos;

use crate::event::TraceEvent;
use crate::period::PeriodSample;

/// Minimal JSON emitter for flat objects and arrays of objects.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    needs_comma: bool,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    /// Consumes the writer, returning the rendered JSON.
    pub fn finish(self) -> String {
        self.out
    }

    fn pre_value(&mut self) {
        if self.needs_comma {
            self.out.push(',');
        }
        self.needs_comma = true;
    }

    /// Opens a JSON array (as a value position).
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.needs_comma = false;
    }

    /// Closes a JSON array.
    pub fn end_array(&mut self) {
        self.out.push(']');
        self.needs_comma = true;
    }

    /// Opens a JSON object (as a value position).
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.needs_comma = false;
    }

    /// Closes a JSON object.
    pub fn end_object(&mut self) {
        self.out.push('}');
        self.needs_comma = true;
    }

    fn key(&mut self, name: &str) {
        self.pre_value();
        self.out.push('"');
        self.out.push_str(name); // keys are internal identifiers, no escapes
        self.out.push_str("\":");
        // The value that follows must not get its own comma.
        self.needs_comma = false;
    }

    /// Emits `"name": value` for an unsigned integer.
    pub fn field_u64(&mut self, name: &str, v: u64) {
        self.key(name);
        self.out.push_str(&v.to_string());
        self.needs_comma = true;
    }

    /// Emits `"name": value` for a bool.
    pub fn field_bool(&mut self, name: &str, v: bool) {
        self.key(name);
        self.out.push_str(if v { "true" } else { "false" });
        self.needs_comma = true;
    }

    /// Emits `"name": value` for a float (`null` for non-finite values,
    /// which raw JSON cannot represent).
    pub fn field_f64(&mut self, name: &str, v: f64) {
        self.key(name);
        if v.is_finite() {
            self.out.push_str(&format!("{:.6}", v));
        } else {
            self.out.push_str("null");
        }
        self.needs_comma = true;
    }

    /// Emits `"name": "value"` with escaping.
    pub fn field_str(&mut self, name: &str, v: &str) {
        self.key(name);
        self.out.push('"');
        for c in v.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
        self.needs_comma = true;
    }
}

/// Renders period samples as a JSON document:
/// `{"label": ..., "periods": [...]}`.
pub fn periods_to_json(label: &str, periods: &[PeriodSample]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("label", label);
    w.key("periods");
    w.begin_array();
    for p in periods {
        p.write_json(&mut w);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Renders period samples as CSV with a header row.
pub fn periods_to_csv(periods: &[PeriodSample]) -> String {
    let mut out = String::from(PeriodSample::csv_header());
    out.push('\n');
    for p in periods {
        out.push_str(&p.csv_row());
        out.push('\n');
    }
    out
}

/// Renders events as JSON Lines: one `{"t_ns": ..., "kind": ..., ...}`
/// object per line, oldest first.
pub fn events_to_jsonl<'a>(events: impl Iterator<Item = &'a (Nanos, TraceEvent)>) -> String {
    let mut out = String::new();
    for (t, ev) in events {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("t_ns", t.as_nanos());
        w.field_str("kind", ev.kind());
        ev.write_fields(&mut w);
        w.end_object();
        out.push_str(&w.finish());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MigrateDir;

    #[test]
    fn escapes_strings() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("s", "a\"b\\c\nd");
        w.end_object();
        assert_eq!(w.finish(), r#"{"s":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn object_commas_are_placed_between_fields_only() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("a", 1);
        w.field_u64("b", 2);
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":2}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_f64("x", f64::NAN);
        w.end_object();
        assert_eq!(w.finish(), r#"{"x":null}"#);
    }

    #[test]
    fn periods_json_contains_required_fields() {
        let s = PeriodSample {
            timestamp: Nanos(5),
            ..Default::default()
        };
        let j = periods_to_json("Chrono", &[s]);
        for field in [
            "\"label\":\"Chrono\"",
            "\"timestamp_ns\":5",
            "\"cit_threshold_ns\":",
            "\"rate_limit_bps\":",
            "\"promoted_pages\":",
            "\"demoted_pages\":",
            "\"thrash_events\":",
            "\"fmar\":",
        ] {
            assert!(j.contains(field), "missing {} in {}", field, j);
        }
    }

    #[test]
    fn events_jsonl_one_line_per_event() {
        let evs = [
            (Nanos(1), TraceEvent::Thrash { pages: 2 }),
            (
                Nanos(2),
                TraceEvent::MigrateComplete {
                    pid: 0,
                    vpn: 9,
                    pages: 1,
                    dir: MigrateDir::Promote,
                },
            ),
        ];
        let text = events_to_jsonl(evs.iter());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"thrash\""));
        assert!(lines[1].contains("\"dir\":\"promote\""));
    }

    #[test]
    fn csv_export_has_header_plus_rows() {
        let csv = periods_to_csv(&[PeriodSample::default(), PeriodSample::default()]);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("timestamp_ns,"));
    }
}
