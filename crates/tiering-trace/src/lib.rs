#![warn(missing_docs)]
//! Structured observability for tiering policies.
//!
//! Adaptive tiering systems make decisions whose correctness is invisible
//! from a pass/fail bit: the CIT threshold trajectory, the enqueue rate the
//! tuner reacts to, the heat-map overlap DCSC derives its rate limit from.
//! This crate records that internal trajectory as two complementary streams:
//!
//! - [`PeriodSample`] — one row per scan/tune period with the policy's
//!   control state (threshold, rate limit, queue depth) and the substrate's
//!   delta counters (promoted/demoted/thrashed pages, hint faults, FMAR).
//! - [`TraceEvent`] — discrete events (scan, hint fault + CIT, enqueue,
//!   migrate, demote, tune, DCSC overlap) kept in a bounded ring so long
//!   runs cannot exhaust memory.
//!
//! The [`Tracer`] handle is embedded in the simulated system and is **off by
//! default**: every recording entry point checks a single bool first and
//! event construction happens inside closures, so a disabled tracer costs
//! one predictable branch per call site and allocates nothing.
//!
//! Export is dependency-free JSON and CSV (see [`export`]), consumed by the
//! harness `--json`/`--trace` flags.

pub mod digest;
pub mod event;
pub mod export;
pub mod period;
pub mod ring;
pub mod tracer;

pub use digest::TraceDigest;
pub use event::{MigrateDir, TraceEvent};
pub use period::{PeriodSample, PolicyTraceState};
pub use ring::EventRing;
pub use tracer::{Tracer, DEFAULT_EVENT_CAP};
