//! Per-scan-period counter rows.

use sim_clock::Nanos;

use crate::export::JsonWriter;

/// Policy-side control state contributed to a period sample. Baselines that
/// have no threshold/queue machinery pass [`PolicyTraceState::default`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PolicyTraceState {
    /// Active CIT threshold (zero for policies without one).
    pub cit_threshold: Nanos,
    /// Promotion rate limit in bytes/second (zero if unlimited/absent).
    pub rate_limit_bps: u64,
    /// Entries sitting in the promotion queue right now.
    pub queue_depth: u64,
    /// Base pages enqueued during this period.
    pub enqueued_pages: u64,
    /// Lifetime base pages dequeued (migration-started).
    pub dequeued_pages: u64,
    /// Lifetime base pages dropped on queue overflow.
    pub dropped_pages: u64,
    /// Latest DCSC heat-map misplacement ratio (zero when DCSC is off).
    pub heat_overlap_ratio: f64,
}

/// One exported row: the policy's control state plus the substrate's
/// activity during the period ending at `timestamp`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PeriodSample {
    /// Simulated time at the end of the period.
    pub timestamp: Nanos,
    /// Policy control state at sampling time.
    pub policy: PolicyTraceState,
    /// Pages promoted slow → fast during the period.
    pub promoted_pages: u64,
    /// Pages demoted fast → slow during the period.
    pub demoted_pages: u64,
    /// Thrashing events flagged during the period.
    pub thrash_events: u64,
    /// Hint faults taken during the period.
    pub hint_faults: u64,
    /// Fast-tier memory access ratio over the period's accesses.
    pub period_fmar: f64,
    /// Cumulative FMAR over the whole run so far.
    pub fmar: f64,
    /// Fast-tier frames in use at sampling time.
    pub fast_used_frames: u64,
    /// Slow-tier frames in use at sampling time.
    pub slow_used_frames: u64,
    /// Migration transactions in flight at sampling time (gauge).
    pub in_flight_migrations: u64,
    /// Frames permanently quarantined across both tiers at sampling time
    /// (gauge; uncorrectable-error retirements).
    pub quarantined_frames: u64,
    /// Fast-tier frames offlined by capacity events at sampling time (gauge).
    pub offlined_frames: u64,
    /// Packed per-tier health gauge: 4 bits per tier in chain order
    /// (0 = Online). An all-healthy chain packs to 0, and the digest only
    /// folds non-zero values, so fault-free runs hash as they always did.
    pub tier_health: u32,
}

impl PeriodSample {
    /// Writes the sample as one JSON object into `w`.
    pub(crate) fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("timestamp_ns", self.timestamp.as_nanos());
        w.field_u64("cit_threshold_ns", self.policy.cit_threshold.as_nanos());
        w.field_u64("rate_limit_bps", self.policy.rate_limit_bps);
        w.field_u64("queue_depth", self.policy.queue_depth);
        w.field_u64("enqueued_pages", self.policy.enqueued_pages);
        w.field_u64("dequeued_pages", self.policy.dequeued_pages);
        w.field_u64("dropped_pages", self.policy.dropped_pages);
        w.field_f64("heat_overlap_ratio", self.policy.heat_overlap_ratio);
        w.field_u64("promoted_pages", self.promoted_pages);
        w.field_u64("demoted_pages", self.demoted_pages);
        w.field_u64("thrash_events", self.thrash_events);
        w.field_u64("hint_faults", self.hint_faults);
        w.field_f64("period_fmar", self.period_fmar);
        w.field_f64("fmar", self.fmar);
        w.field_u64("fast_used_frames", self.fast_used_frames);
        w.field_u64("slow_used_frames", self.slow_used_frames);
        w.field_u64("in_flight_migrations", self.in_flight_migrations);
        w.field_u64("quarantined_frames", self.quarantined_frames);
        w.field_u64("offlined_frames", self.offlined_frames);
        w.field_u64("tier_health", self.tier_health as u64);
        w.end_object();
    }

    /// CSV header matching [`PeriodSample::csv_row`].
    pub fn csv_header() -> &'static str {
        "timestamp_ns,cit_threshold_ns,rate_limit_bps,queue_depth,enqueued_pages,\
         dequeued_pages,dropped_pages,heat_overlap_ratio,promoted_pages,demoted_pages,\
         thrash_events,hint_faults,period_fmar,fmar,fast_used_frames,slow_used_frames,\
         in_flight_migrations,quarantined_frames,offlined_frames,tier_health"
    }

    /// One CSV row (no trailing newline).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.timestamp.as_nanos(),
            self.policy.cit_threshold.as_nanos(),
            self.policy.rate_limit_bps,
            self.policy.queue_depth,
            self.policy.enqueued_pages,
            self.policy.dequeued_pages,
            self.policy.dropped_pages,
            self.policy.heat_overlap_ratio,
            self.promoted_pages,
            self.demoted_pages,
            self.thrash_events,
            self.hint_faults,
            self.period_fmar,
            self.fmar,
            self.fast_used_frames,
            self.slow_used_frames,
            self.in_flight_migrations,
            self.quarantined_frames,
            self.offlined_frames,
            self.tier_health,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_row_matches_header_arity() {
        let header_cols = PeriodSample::csv_header().split(',').count();
        let row_cols = PeriodSample::default().csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
    }

    #[test]
    fn csv_row_carries_values() {
        let s = PeriodSample {
            timestamp: Nanos(42),
            promoted_pages: 7,
            ..Default::default()
        };
        let row = s.csv_row();
        assert!(row.starts_with("42,"));
        assert!(row.contains(",7,"));
    }
}
