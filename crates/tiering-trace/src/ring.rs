//! A bounded ring of timestamped events.

use std::collections::VecDeque;

use sim_clock::Nanos;

use crate::event::TraceEvent;

/// Bounded FIFO of `(timestamp, event)` pairs. When full, the oldest entry
/// is evicted and counted, so a long run keeps its most recent history and
/// the exporter can report how much was shed.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: VecDeque<(Nanos, TraceEvent)>,
    cap: usize,
    dropped: u64,
}

impl EventRing {
    /// Creates a ring bounded at `cap` entries (`cap == 0` keeps nothing).
    pub fn new(cap: usize) -> EventRing {
        EventRing {
            buf: VecDeque::new(),
            cap,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when at capacity.
    pub fn push(&mut self, at: Nanos, ev: TraceEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back((at, ev));
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted (or rejected by a zero-capacity ring) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &(Nanos, TraceEvent)> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent::Thrash { pages: n }
    }

    #[test]
    fn keeps_newest_when_full() {
        let mut r = EventRing::new(3);
        for i in 0..5 {
            r.push(Nanos(i), ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let ts: Vec<u64> = r.iter().map(|(t, _)| t.as_nanos()).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_counts_everything_as_dropped() {
        let mut r = EventRing::new(0);
        r.push(Nanos(1), ev(1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn iter_is_fifo() {
        let mut r = EventRing::new(8);
        r.push(Nanos(1), ev(10));
        r.push(Nanos(2), ev(20));
        let pages: Vec<u64> = r
            .iter()
            .map(|(_, e)| match e {
                TraceEvent::Thrash { pages } => *pages,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pages, vec![10, 20]);
    }
}
