//! The recording handle embedded in the simulated system.

use sim_clock::Nanos;

use crate::event::TraceEvent;
use crate::export;
use crate::period::PeriodSample;
use crate::ring::EventRing;

/// Default bound on the discrete-event ring.
pub const DEFAULT_EVENT_CAP: usize = 1 << 16;

/// Records period samples and discrete events when enabled; a disabled
/// tracer is a single-bool no-op on every path.
///
/// # Examples
///
/// ```
/// use tiering_trace::{TraceEvent, Tracer};
/// use sim_clock::Nanos;
///
/// let mut off = Tracer::disabled();
/// off.emit(Nanos(1), || TraceEvent::Thrash { pages: 1 });
/// assert_eq!(off.events().count(), 0);
///
/// let mut on = Tracer::enabled(16);
/// on.emit(Nanos(1), || TraceEvent::Thrash { pages: 1 });
/// assert_eq!(on.events().count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    ring: EventRing,
    periods: Vec<PeriodSample>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::disabled()
    }
}

impl Tracer {
    /// The default: recording off, nothing allocated.
    pub fn disabled() -> Tracer {
        Tracer {
            enabled: false,
            ring: EventRing::new(0),
            periods: Vec::new(),
        }
    }

    /// A recording tracer whose event ring holds at most `event_cap`
    /// entries (period samples are unbounded — one per scan period is tiny).
    pub fn enabled(event_cap: usize) -> Tracer {
        Tracer {
            enabled: true,
            ring: EventRing::new(event_cap),
            periods: Vec::new(),
        }
    }

    /// Whether recording is on. Emit sites may check this to skip preparing
    /// expensive arguments, but [`Tracer::emit`] already defers construction
    /// via its closure.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a discrete event. The closure runs only when enabled, so a
    /// disabled tracer never constructs the event.
    #[inline(always)]
    pub fn emit(&mut self, at: Nanos, ev: impl FnOnce() -> TraceEvent) {
        if self.enabled {
            self.ring.push(at, ev());
        }
    }

    /// Records a period sample. The closure runs only when enabled.
    #[inline(always)]
    pub fn record_period(&mut self, sample: impl FnOnce() -> PeriodSample) {
        if self.enabled {
            self.periods.push(sample());
        }
    }

    /// Recorded period samples, oldest first.
    pub fn periods(&self) -> &[PeriodSample] {
        &self.periods
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(Nanos, TraceEvent)> {
        self.ring.iter()
    }

    /// Events shed by the bounded ring.
    pub fn dropped_events(&self) -> u64 {
        self.ring.dropped()
    }

    /// Stable 64-bit digest of everything recorded: every period sample and
    /// every ring event (plus the dropped-event count), in order. Two runs of
    /// the same seeded simulation must produce the same digest; see
    /// [`crate::digest::TraceDigest`] for the encoding.
    pub fn digest(&self) -> u64 {
        let mut d = crate::digest::TraceDigest::new();
        d.u64(self.periods.len() as u64);
        for s in &self.periods {
            d.period(s);
        }
        for (at, ev) in self.ring.iter() {
            d.event(*at, ev);
        }
        d.u64(self.ring.dropped());
        d.value()
    }

    /// [`Tracer::digest`] as a fixed-width hex string (export/golden format).
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }

    /// Renders the period samples as a JSON document.
    pub fn periods_json(&self, label: &str) -> String {
        export::periods_to_json(label, &self.periods)
    }

    /// Renders the period samples as CSV.
    pub fn periods_csv(&self) -> String {
        export::periods_to_csv(&self.periods)
    }

    /// Renders the event ring as JSON Lines.
    pub fn events_jsonl(&self) -> String {
        export::events_to_jsonl(self.ring.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_and_never_runs_closures() {
        let mut t = Tracer::disabled();
        t.emit(Nanos(1), || panic!("must not construct when disabled"));
        t.record_period(|| panic!("must not sample when disabled"));
        assert!(t.periods().is_empty());
        assert_eq!(t.events().count(), 0);
    }

    #[test]
    fn enabled_records_both_streams() {
        let mut t = Tracer::enabled(4);
        t.emit(Nanos(1), || TraceEvent::Thrash { pages: 3 });
        t.record_period(|| PeriodSample {
            timestamp: Nanos(2),
            ..Default::default()
        });
        assert_eq!(t.events().count(), 1);
        assert_eq!(t.periods().len(), 1);
        assert_eq!(t.periods()[0].timestamp, Nanos(2));
    }

    #[test]
    fn ring_bound_applies() {
        let mut t = Tracer::enabled(2);
        for i in 0..5 {
            t.emit(Nanos(i), || TraceEvent::Thrash { pages: i });
        }
        assert_eq!(t.events().count(), 2);
        assert_eq!(t.dropped_events(), 3);
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let record = |pages: u64| {
            let mut t = Tracer::enabled(4);
            t.emit(Nanos(1), || TraceEvent::Thrash { pages });
            t.record_period(|| PeriodSample {
                timestamp: Nanos(2),
                ..Default::default()
            });
            t.digest()
        };
        assert_eq!(record(3), record(3));
        assert_ne!(record(3), record(4));
        assert_eq!(Tracer::disabled().digest(), Tracer::disabled().digest());
    }

    #[test]
    fn exports_render() {
        let mut t = Tracer::enabled(4);
        t.record_period(PeriodSample::default);
        t.emit(Nanos(1), || TraceEvent::Thrash { pages: 1 });
        assert!(t.periods_json("x").contains("\"periods\":[{"));
        assert!(t.periods_csv().lines().count() == 2);
        assert!(t.events_jsonl().contains("thrash"));
    }
}
