//! Golden-trace snapshots for canonical seeds.
//!
//! A golden is a text file recording, for one canonical seed, the trace
//! digest and access count of every policy in [`ALL_POLICIES`]. `harness
//! verify` recomputes the table and diffs it against the checked-in file; a
//! mismatch means either a real behaviour change (re-bless deliberately with
//! `harness verify --bless`) or a lost determinism guarantee (investigate).
//!
//! Goldens are compared both by the harness binary (`harness verify`, the
//! release-mode CI gate) and by the `committed_goldens_match_recomputation`
//! integration test in `tests/determinism.rs` — the simulation is pure
//! integer and IEEE-754 arithmetic, so debug and release digests agree.

use std::fmt;
use std::path::{Path, PathBuf};

use sim_clock::Nanos;
use tiered_mem::FaultPlan;

use crate::policy_fuzz::{
    run_policy_case, run_policy_case_with_plan, run_three_tier_case, PolicyUnderTest, ALL_POLICIES,
    THREE_TIER_POLICIES,
};
use crate::sharded::{run_sharded_case, run_sharded_tier_chaos_case, SHARD_GOLDEN_TENANTS};

/// The two canonical seeds snapshotted in the repository.
pub const GOLDEN_SEEDS: [u64; 2] = [0xC4A0_0001, 0xC4A0_0002];

/// Simulated run length for golden snapshots (milliseconds of virtual time).
pub const GOLDEN_MILLIS: u64 = 25;

/// Simulated run length for the multi-tenant shard goldens — shorter than
/// [`GOLDEN_MILLIS`] because the thread-invariance suite recomputes each
/// table at three worker-thread counts.
pub const SHARD_GOLDEN_MILLIS: u64 = 10;

/// The canonical seed for the faulty-run snapshot (both the workload shape
/// and the fault plan's RNG derive from it).
pub const FAULT_GOLDEN_SEED: u64 = 0xFA_0001;

/// Directory holding the checked-in snapshots.
pub fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("goldens")
}

/// Path of the snapshot for one seed.
pub fn golden_path(seed: u64) -> PathBuf {
    golden_dir().join(format!("seed_{seed:08x}.txt"))
}

/// Path of the faulty-run snapshot.
pub fn fault_golden_path() -> PathBuf {
    golden_dir().join(format!("fault_seed_{FAULT_GOLDEN_SEED:08x}.txt"))
}

/// Path of the multi-tenant shard snapshot for one seed.
pub fn shard_golden_path(seed: u64) -> PathBuf {
    golden_dir().join(format!("shard_seed_{seed:08x}.txt"))
}

/// Path of the three-tier snapshot for one seed.
pub fn three_tier_golden_path(seed: u64) -> PathBuf {
    golden_dir().join(format!("threetier_seed_{seed:08x}.txt"))
}

/// Path of the tier-chaos shard snapshot for one seed (multi-tenant run
/// with a mid-run `TierOffline`/rejoin arc applied at barriers).
pub fn tier_chaos_golden_path(seed: u64) -> PathBuf {
    golden_dir().join(format!("tierchaos_seed_{seed:08x}.txt"))
}

/// Recomputes the snapshot table for a seed: one `<policy> <digest-hex>
/// <accesses>` line per policy, in [`ALL_POLICIES`] order.
pub fn compute_golden(seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# tiering-verify golden: seed {seed:#010x}, {GOLDEN_MILLIS} ms per policy\n"
    ));
    for p in ALL_POLICIES {
        let r = run_policy_case(p, seed, GOLDEN_MILLIS);
        out.push_str(&format!(
            "{:<16} {:016x} {}\n",
            r.policy, r.digest, r.accesses
        ));
    }
    out
}

/// Recomputes the faulty-run snapshot: every Chrono tuning mode under the
/// canonical fault plan, one `<policy> <digest-hex> <accesses>` line each.
/// Same seed ⇒ byte-identical table — faulty runs are exactly as replayable
/// as clean ones.
pub fn compute_fault_golden() -> String {
    let plan = FaultPlan::canonical(FAULT_GOLDEN_SEED, Nanos::from_millis(GOLDEN_MILLIS));
    let mut out = String::new();
    out.push_str(&format!(
        "# tiering-verify faulty golden: seed {FAULT_GOLDEN_SEED:#010x}, canonical fault plan, \
         {GOLDEN_MILLIS} ms per tuning mode\n"
    ));
    for p in ALL_POLICIES.into_iter().filter(|p| p.is_chrono()) {
        let r = run_policy_case_with_plan(p, FAULT_GOLDEN_SEED, GOLDEN_MILLIS, Some(plan.clone()));
        out.push_str(&format!(
            "{:<16} {:016x} {}\n",
            r.policy, r.digest, r.accesses
        ));
    }
    out
}

/// Recomputes the multi-tenant shard snapshot for a seed: every policy run
/// over [`SHARD_GOLDEN_TENANTS`] weighted shards with the admission hook on,
/// single-threaded (the thread-invariance suite proves 2- and 8-thread runs
/// reproduce the same table). One line per policy: `<policy> <combined>
/// <accesses> <per-tenant digests...>`.
pub fn compute_shard_golden(seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# tiering-verify shard golden: seed {seed:#010x}, {SHARD_GOLDEN_TENANTS} tenants, \
         admission on, {SHARD_GOLDEN_MILLIS} ms per policy\n"
    ));
    for p in ALL_POLICIES {
        let r = run_sharded_case(p, seed, SHARD_GOLDEN_MILLIS, SHARD_GOLDEN_TENANTS, 1, true);
        assert!(
            r.clean(),
            "shard golden case {p:?}/{seed:#x} broke invariants: {:?}",
            r.violations
        );
        out.push_str(&format!(
            "{:<16} {:016x} {}",
            r.policy, r.combined_digest, r.accesses
        ));
        for d in &r.tenant_digests {
            out.push_str(&format!(" {d:016x}"));
        }
        out.push('\n');
    }
    out
}

/// Recomputes the three-tier snapshot for a seed: cascaded Chrono-DCSC and
/// TPP-3 on the DRAM+CXL+PMem chain, one `<policy> <digest-hex> <accesses>`
/// line each. Runs are invariant-checked while they execute, so a golden
/// that drifts because the oracle now rejects the run fails loudly here
/// instead of silently re-blessing.
pub fn compute_three_tier_golden(seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# tiering-verify three-tier golden: seed {seed:#010x}, DRAM+CXL+PMem, \
         {GOLDEN_MILLIS} ms per policy\n"
    ));
    for p in THREE_TIER_POLICIES {
        let r = run_three_tier_case(p, seed, GOLDEN_MILLIS);
        assert!(
            r.clean(),
            "three-tier golden case {p:?}/{seed:#x} broke invariants: {:?}",
            r.violations
        );
        out.push_str(&format!(
            "{:<16} {:016x} {}\n",
            r.policy, r.digest, r.accesses
        ));
    }
    out
}

/// Policies snapshotted in the tier-chaos shard golden: the three Chrono
/// tuning modes plus a representative baseline.
const TIER_CHAOS_POLICIES: [PolicyUnderTest; 4] = [
    PolicyUnderTest::Tpp,
    PolicyUnderTest::ChronoDcsc,
    PolicyUnderTest::ChronoSemiAuto,
    PolicyUnderTest::ChronoManual,
];

/// Recomputes the tier-chaos shard snapshot for a seed: the multi-tenant
/// case with every tenant's slow tier going offline mid-run (live
/// evacuation window) and rejoining, single-threaded — the thread-invariance
/// suite proves 2- and 8-worker replays reproduce the same table. One line
/// per policy: `<policy> <combined> <accesses> <per-tenant digests...>`.
/// The arc must actually fire (health transitions recorded) — a chaos
/// golden whose tiers never fail pins nothing.
pub fn compute_tier_chaos_golden(seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# tiering-verify tier-chaos shard golden: seed {seed:#010x}, \
         {SHARD_GOLDEN_TENANTS} tenants, slow tier offline/rejoin mid-run, \
         {SHARD_GOLDEN_MILLIS} ms per policy\n"
    ));
    for p in TIER_CHAOS_POLICIES {
        let r = run_sharded_tier_chaos_case(p, seed, SHARD_GOLDEN_MILLIS, 1);
        assert!(
            r.clean(),
            "tier-chaos golden case {p:?}/{seed:#x} broke invariants: {:?}",
            r.violations
        );
        assert!(
            r.tier_health_transitions > 0,
            "tier-chaos golden case {p:?}/{seed:#x} never failed a tier"
        );
        out.push_str(&format!(
            "{:<16} {:016x} {}",
            r.policy, r.combined_digest, r.accesses
        ));
        for d in &r.tenant_digests {
            out.push_str(&format!(" {d:016x}"));
        }
        out.push('\n');
    }
    out
}

/// Outcome of checking one seed's snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoldenStatus {
    /// Recorded and recomputed tables are identical.
    Match,
    /// No snapshot file exists yet (run `harness verify --bless`).
    Missing,
    /// Recorded and recomputed tables differ.
    Mismatch {
        /// Contents of the checked-in file.
        expected: String,
        /// Freshly recomputed table.
        actual: String,
    },
}

/// Result of checking one canonical seed.
#[derive(Debug, Clone)]
pub struct GoldenResult {
    /// The canonical seed.
    pub seed: u64,
    /// Snapshot file location.
    pub path: PathBuf,
    /// Comparison outcome.
    pub status: GoldenStatus,
}

impl GoldenResult {
    /// Whether this snapshot passed.
    pub fn ok(&self) -> bool {
        self.status == GoldenStatus::Match
    }
}

impl fmt::Display for GoldenResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.status {
            GoldenStatus::Match => {
                let name = self.path.file_name().unwrap_or_default().to_string_lossy();
                write!(f, "golden {name} (seed {:#010x}): ok", self.seed)
            }
            GoldenStatus::Missing => write!(
                f,
                "golden seed {:#010x}: missing snapshot {} (run `harness verify --bless`)",
                self.seed,
                self.path.display()
            ),
            GoldenStatus::Mismatch { expected, actual } => {
                writeln!(
                    f,
                    "golden seed {:#010x}: MISMATCH against {}",
                    self.seed,
                    self.path.display()
                )?;
                for (e, a) in expected.lines().zip(actual.lines()) {
                    if e != a {
                        writeln!(f, "  - {e}")?;
                        writeln!(f, "  + {a}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

fn diff_status(path: &Path, actual: String) -> GoldenStatus {
    match std::fs::read_to_string(path) {
        Err(_) => GoldenStatus::Missing,
        Ok(expected) if expected == actual => GoldenStatus::Match,
        Ok(expected) => GoldenStatus::Mismatch { expected, actual },
    }
}

/// Checks every canonical seed — clean snapshots plus the faulty-run
/// snapshot — against its checked-in file.
pub fn check_goldens() -> Vec<GoldenResult> {
    let mut results: Vec<GoldenResult> = GOLDEN_SEEDS
        .iter()
        .map(|&seed| {
            let path = golden_path(seed);
            let status = diff_status(&path, compute_golden(seed));
            GoldenResult { seed, path, status }
        })
        .collect();
    let path = fault_golden_path();
    let status = diff_status(&path, compute_fault_golden());
    results.push(GoldenResult {
        seed: FAULT_GOLDEN_SEED,
        path,
        status,
    });
    for &seed in &GOLDEN_SEEDS {
        let path = shard_golden_path(seed);
        let status = diff_status(&path, compute_shard_golden(seed));
        results.push(GoldenResult { seed, path, status });
    }
    for &seed in &GOLDEN_SEEDS {
        let path = three_tier_golden_path(seed);
        let status = diff_status(&path, compute_three_tier_golden(seed));
        results.push(GoldenResult { seed, path, status });
    }
    for &seed in &GOLDEN_SEEDS {
        let path = tier_chaos_golden_path(seed);
        let status = diff_status(&path, compute_tier_chaos_golden(seed));
        results.push(GoldenResult { seed, path, status });
    }
    results
}

/// Recomputes and writes every canonical snapshot (clean and faulty);
/// returns the paths written.
pub fn bless_goldens() -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(golden_dir())?;
    let mut written = Vec::new();
    for &seed in &GOLDEN_SEEDS {
        let path = golden_path(seed);
        std::fs::write(&path, compute_golden(seed))?;
        written.push(path);
    }
    let path = fault_golden_path();
    std::fs::write(&path, compute_fault_golden())?;
    written.push(path);
    for &seed in &GOLDEN_SEEDS {
        let path = shard_golden_path(seed);
        std::fs::write(&path, compute_shard_golden(seed))?;
        written.push(path);
    }
    for &seed in &GOLDEN_SEEDS {
        let path = three_tier_golden_path(seed);
        std::fs::write(&path, compute_three_tier_golden(seed))?;
        written.push(path);
    }
    for &seed in &GOLDEN_SEEDS {
        let path = tier_chaos_golden_path(seed);
        std::fs::write(&path, compute_tier_chaos_golden(seed))?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_table_is_deterministic() {
        // One policy per call keeps this fast enough for the debug-mode
        // suite; full-table comparisons run in the release-mode harness.
        let a = run_policy_case(ALL_POLICIES[0], GOLDEN_SEEDS[0], 5);
        let b = run_policy_case(ALL_POLICIES[0], GOLDEN_SEEDS[0], 5);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.accesses, b.accesses);
    }

    #[test]
    fn golden_paths_are_stable() {
        assert!(golden_path(0xC4A0_0001)
            .to_string_lossy()
            .ends_with("goldens/seed_c4a00001.txt"));
        assert!(fault_golden_path()
            .to_string_lossy()
            .ends_with("goldens/fault_seed_00fa0001.txt"));
    }

    #[test]
    #[ignore = "writes goldens; run explicitly to (re)bless only the tier-chaos snapshots"]
    fn bless_tier_chaos_goldens_only() {
        // Narrow bless: regenerates the tier-chaos shard snapshots without
        // touching any pre-existing golden file.
        std::fs::create_dir_all(golden_dir()).unwrap();
        for &seed in &GOLDEN_SEEDS {
            std::fs::write(
                tier_chaos_golden_path(seed),
                compute_tier_chaos_golden(seed),
            )
            .unwrap();
        }
    }

    #[test]
    fn fault_golden_is_deterministic() {
        // One tuning mode, short run: byte-identical across recomputations.
        let plan = FaultPlan::canonical(FAULT_GOLDEN_SEED, Nanos::from_millis(5));
        let one = |_: ()| {
            run_policy_case_with_plan(
                crate::policy_fuzz::PolicyUnderTest::ChronoDcsc,
                FAULT_GOLDEN_SEED,
                5,
                Some(plan.clone()),
            )
        };
        let (a, b) = (one(()), one(()));
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.accesses, b.accesses);
    }
}
