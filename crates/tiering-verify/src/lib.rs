//! Deterministic differential-fuzzing and invariant-oracle layer for the
//! tiering substrate and every policy built on it.
//!
//! Four pieces, layered bottom-up:
//!
//! - [`oracle`]: the [`InvariantOracle`], a pure observer that sweeps a
//!   [`tiered_mem::TieredSystem`] and reports every broken substrate
//!   invariant — frame conservation, PFN exclusivity, reverse-map and
//!   residency-cache agreement, huge-block integrity, LRU consistency,
//!   watermark ordering, and migration-byte accounting.
//! - [`ops`] + [`shrink`]: a seeded op-schedule fuzzer over the raw
//!   substrate. Failures shrink (ddmin) to a minimal replayable sequence
//!   printed with its seed and case shape.
//! - [`policy_fuzz`]: seeded end-to-end runs of every tiering policy with
//!   the oracle attached to the driver's inspect hook, plus the
//!   same-seed ⇒ same-digest determinism check.
//! - [`metamorphic`] + [`golden`]: directional relations over the Chrono
//!   control loop (CIT-threshold monotonicity, rate-limit monotonicity,
//!   huge/base accounting agreement) and golden-trace snapshots for
//!   canonical seeds.
//!
//! The `harness verify` and `harness fuzz` subcommands drive this crate
//! from CI; `cargo test -p tiering-verify` runs the scaled-down versions.

#![warn(missing_docs)]

pub mod golden;
pub mod metamorphic;
pub mod ops;
pub mod oracle;
pub mod policy_fuzz;
pub mod sharded;
pub mod shrink;

pub use golden::{
    bless_goldens, check_goldens, GoldenResult, GoldenStatus, FAULT_GOLDEN_SEED, GOLDEN_SEEDS,
};
pub use ops::{
    fault_case_from_seed, fuzz_one, fuzz_one_fault_storm, fuzz_one_stress, fuzz_one_three_tier,
    generate_fault_ops, generate_ops, generate_stress_ops, generate_three_tier_ops, run_case,
    stress_case_from_seed, three_tier_case_from_seed, CaseConfig, FuzzOp, OpsFailure,
    ShrunkFailure,
};
pub use oracle::{InvariantOracle, Violation};
pub use policy_fuzz::{
    determinism_digests, fuzz_one_tier_chaos, run_policy_case, run_policy_case_with_plan,
    run_three_tier_case, run_three_tier_case_with_plan, PolicyRunReport, PolicyUnderTest,
    ThreeTierPolicy, ALL_POLICIES, THREE_TIER_POLICIES,
};
pub use sharded::{
    fuzz_one_tenant_storm, run_sharded_case, run_sharded_case_mixed, run_sharded_case_permuted,
    run_sharded_case_with_plans, run_sharded_tier_chaos_case, shard_tier_chaos_events,
    tenant_weights, ShardedCaseReport, SHARD_GOLDEN_TENANTS,
};
pub use shrink::shrink_ops;
