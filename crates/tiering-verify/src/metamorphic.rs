//! Metamorphic relations over the Chrono control components.
//!
//! These checks perturb one control input and assert the *direction* of the
//! response, which catches sign/direction bugs that absolute-value tests
//! miss. Directions follow the mechanics, not folklore:
//!
//! - **CIT classification**: a page is hot when its captured idle time is at
//!   most the threshold (`cit <= threshold`), so *raising* the threshold
//!   admits **more** pages — the classified-hot count is monotonically
//!   non-decreasing in the threshold.
//! - **Rate limiting**: lowering the promotion rate limit can never increase
//!   the pages a queue dequeues for an identical offer/drain schedule.
//! - **Huge/base accounting**: migration byte accounting must agree with the
//!   page counters regardless of mapping granularity (512-page blocks vs
//!   base pages move through the same counters).

use chrono_core::queue::PendingPromotion;
use chrono_core::{ChronoConfig, ChronoPolicy, PromotionQueue};
use sim_clock::{DetRng, Nanos};
use tiered_mem::{PageSize, ProcessId, SystemConfig, TieredSystem, Vpn, BASE_PAGE_BYTES};
use tiering_policies::{DriverConfig, SimulationDriver};
use tiering_trace::TraceEvent;
use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

use crate::oracle::InvariantOracle;

/// One round of the rate-limit monotonicity relation: an identical seeded
/// offer/drain schedule is fed to two queues whose only difference is the
/// rate limit (`lo <= hi`). At every drain the lower-rate queue may trail by
/// at most one oversized (huge-block) release, and at the end of the
/// schedule it must not have dequeued more than the higher-rate queue.
pub fn check_queue_rate_monotonicity(seed: u64) -> Result<(), String> {
    let mut rng = DetRng::seed(seed ^ 0x4A7E_11117);
    let page = BASE_PAGE_BYTES;
    let rate_lo = (1 + rng.below(50)) * page;
    let rate_hi = rate_lo * (1 + rng.below(8));
    let mut q_lo = PromotionQueue::new(rate_lo, 1 << 12);
    let mut q_hi = PromotionQueue::new(rate_hi, 1 << 12);
    let interval = Nanos::from_millis(10 + rng.below(90));

    let mut vpn = 0u32;
    for step in 0..400 {
        // Identical arrivals into both queues.
        let arrivals = rng.below(4);
        for _ in 0..arrivals {
            let pages = if rng.chance(0.05) {
                512
            } else {
                1 + rng.below(8) as u32
            };
            let p = PendingPromotion {
                pid: ProcessId(0),
                vpn: Vpn(vpn),
                pages,
            };
            vpn += pages;
            q_lo.enqueue(p);
            q_hi.enqueue(p);
        }
        q_lo.drain(interval);
        q_hi.drain(interval);
        if q_lo.dequeued_pages() > q_hi.dequeued_pages() + 512 {
            return Err(format!(
                "seed {seed:#x} step {step}: rate {rate_lo} dequeued {} pages, \
                 rate {rate_hi} only {}",
                q_lo.dequeued_pages(),
                q_hi.dequeued_pages()
            ));
        }
    }
    // Settle: with no further arrivals both queues finish their backlogs at
    // their own pace; the lower rate must never end ahead.
    for _ in 0..20_000 {
        q_lo.drain(interval);
        q_hi.drain(interval);
    }
    if q_lo.dequeued_pages() > q_hi.dequeued_pages() {
        return Err(format!(
            "seed {seed:#x} final: rate {rate_lo} dequeued {} > rate {rate_hi} dequeued {}",
            q_lo.dequeued_pages(),
            q_hi.dequeued_pages()
        ));
    }
    if !q_lo.flow().conserved() || !q_hi.flow().conserved() {
        return Err(format!(
            "seed {seed:#x}: flow not conserved: lo {:?} hi {:?}",
            q_lo.flow(),
            q_hi.flow()
        ));
    }
    Ok(())
}

/// Records the CIT stream of a traced Chrono run and asserts classifier
/// monotonicity in the threshold: for thresholds `t1 <= t2`, the pages the
/// heat-map bucketing classifies at-or-below `t1` are a subset of those for
/// `t2`. Uses the real [`ChronoConfig::bucket_of`] quantization, so a
/// direction or rounding bug in the bucket mapping trips the check.
pub fn check_cit_classifier_monotonicity(seed: u64) -> Result<(), String> {
    let cits = record_cit_stream(seed)?;
    let cfg = ChronoConfig::scaled(Nanos::from_millis(5), 512);
    // Thresholds swept across every bucket boundary (plus zero and beyond
    // the last bucket).
    let thresholds: Vec<Nanos> = (0..cfg.buckets + 1).map(|b| cfg.bucket_floor(b)).collect();
    let mut prev = 0usize;
    let mut prev_t = Nanos::ZERO;
    for &t in &thresholds {
        let admitted = cits
            .iter()
            .filter(|&&cit| cfg.bucket_of(cit) <= cfg.bucket_of(t))
            .count();
        if admitted < prev {
            return Err(format!(
                "seed {seed:#x}: raising CIT threshold {prev_t:?} -> {t:?} shrank the \
                 hot set {prev} -> {admitted} (of {} samples)",
                cits.len()
            ));
        }
        prev = admitted;
        prev_t = t;
    }
    // The sweep must end having admitted every sample.
    if prev != cits.len() {
        return Err(format!(
            "seed {seed:#x}: max threshold admitted {prev} of {} samples",
            cits.len()
        ));
    }
    Ok(())
}

/// Runs semi-auto Chrono over a seeded workload and collects every measured
/// CIT from the trace's hint-fault events.
fn record_cit_stream(seed: u64) -> Result<Vec<Nanos>, String> {
    let mut rng = DetRng::seed(seed ^ 0xC17_57AE);
    let mut sys = TieredSystem::new(SystemConfig::quarter_fast(2048));
    sys.enable_tracing(1 << 14);
    let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(1024, 0.7, rng.next_u64()));
    sys.add_process(w.address_space_pages(), PageSize::Base);
    let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
    let mut policy =
        ChronoPolicy::new(ChronoConfig::scaled(Nanos::from_millis(5), 512).variant_twice());
    SimulationDriver::new(DriverConfig {
        run_for: Nanos::from_millis(40),
        ..Default::default()
    })
    .run(&mut sys, &mut wls, &mut policy);
    let cits: Vec<Nanos> = sys
        .trace
        .events()
        .filter_map(|(_, ev)| match ev {
            TraceEvent::HintFault { cit, .. } => Some(*cit),
            _ => None,
        })
        .collect();
    if cits.is_empty() {
        return Err(format!(
            "seed {seed:#x}: traced run produced no hint faults to classify"
        ));
    }
    Ok(cits)
}

/// Drives a 2 MiB huge-page system through a migration-heavy schedule and
/// asserts the huge-path and base-path accounting agree: the oracle's
/// `migration_accounting` identity (`migration_bytes == moved_pages × 4096`)
/// plus full substrate consistency, where every huge migration moves
/// 512-page units through the same counters base pages use.
pub fn check_huge_base_accounting(seed: u64) -> Result<(), String> {
    let cfg = crate::ops::CaseConfig {
        fast_frames: 1024,
        mid_frames: None,
        slow_frames: 4096,
        procs: vec![(2048, PageSize::Huge2M)],
        // Two 512-frame reservations at most: the free pool never drops
        // below a whole block, so demand paging cannot OOM.
        migration: tiered_mem::MigrationSpec {
            inflight_slots: 2,
            backlog_cap: Nanos::from_millis(10),
        },
        fault_plan: None,
    };
    let ops = crate::ops::generate_ops(&cfg, seed ^ 0x40E6_BA5E, 1200);
    match crate::ops::run_case(&cfg, &ops) {
        Ok(()) => {}
        Err(f) => return Err(format!("seed {seed:#x}: huge-page schedule failed: {f}")),
    }
    // Replay without the oracle to inspect the final accounting directly.
    let mut sys = cfg.build();
    for &op in &ops {
        crate::ops::apply_op(&mut sys, op);
    }
    let moved = sys.stats.promoted_pages + sys.stats.demoted_pages;
    if sys.stats.migration_bytes != moved * BASE_PAGE_BYTES {
        return Err(format!(
            "seed {seed:#x}: migration_bytes {} != moved {} * {}",
            sys.stats.migration_bytes, moved, BASE_PAGE_BYTES
        ));
    }
    if let Some(v) = InvariantOracle::new().check(&sys).into_iter().next() {
        return Err(format!("seed {seed:#x}: {v}"));
    }

    // With split ops filtered out the same system must move whole 512-page
    // blocks only — base-granularity movement can appear solely through an
    // explicit split.
    let unsplit: Vec<crate::ops::FuzzOp> = ops
        .iter()
        .copied()
        .filter(|op| !matches!(op, crate::ops::FuzzOp::Split { .. }))
        .collect();
    let mut sys = cfg.build();
    for &op in &unsplit {
        crate::ops::apply_op(&mut sys, op);
    }
    let moved = sys.stats.promoted_pages + sys.stats.demoted_pages;
    if !moved.is_multiple_of(u64::from(tiered_mem::HUGE_2M_PAGES)) {
        return Err(format!(
            "seed {seed:#x}: split-free huge system moved {moved} pages — not \
             a whole number of 512-page blocks"
        ));
    }
    Ok(())
}

/// Metamorphic relation over in-flight huge migrations: two identical runs
/// open a 2 MiB demotion transaction; one splits the block mid-flight, the
/// other just waits. The split run must abort (moving zero pages, releasing
/// all 512 reserved frames), the control run must complete (moving exactly
/// 512) — and both must stay oracle-clean throughout.
pub fn check_split_aborts_inflight_huge(seed: u64) -> Result<(), String> {
    use tiered_mem::{MigrateMode, TierId};
    let mut rng = DetRng::seed(seed ^ 0x5B11_7AB0);
    let blocks = 1 + rng.below(3) as u32;
    let page_in_block = rng.below(512) as u32;
    let target = rng.below(blocks as u64) as u32 * 512;
    let build = || {
        let mut cfg = SystemConfig::dram_pmem(blocks * 512 + 512, blocks * 512 + 512);
        cfg.migration.inflight_slots = 1;
        let mut sys = TieredSystem::new(cfg);
        let pid = sys.add_process(blocks * 512, PageSize::Huge2M);
        for b in 0..blocks {
            sys.access(pid, Vpn(b * 512 + page_in_block), false);
        }
        sys.begin_migrate(pid, Vpn(target), TierId::SLOW, MigrateMode::Async)
            .map(|_| (sys, pid))
    };

    let (mut split_run, pid) = build().map_err(|e| format!("seed {seed:#x}: begin: {e:?}"))?;
    let mut oracle = InvariantOracle::new();
    if let Some(v) = oracle.check(&split_run).into_iter().next() {
        return Err(format!("seed {seed:#x}: in-flight state dirty: {v}"));
    }
    split_run.split_block(pid, Vpn(target + page_in_block));
    split_run.clock.advance(Nanos::from_millis(20));
    split_run.complete_due_migrations();

    let (mut control, _) = build().map_err(|e| format!("seed {seed:#x}: begin: {e:?}"))?;
    control.clock.advance(Nanos::from_millis(20));
    control.complete_due_migrations();

    for (name, sys) in [("split", &split_run), ("control", &control)] {
        if let Some(v) = oracle.check(sys).into_iter().next() {
            return Err(format!("seed {seed:#x}: {name} run dirty: {v}"));
        }
    }
    if split_run.stats.aborted_migrations != 1
        || split_run.stats.demoted_pages != 0
        || split_run.migration_reserved_frames(TierId::SLOW) != 0
    {
        return Err(format!(
            "seed {seed:#x}: split run expected 1 abort / 0 moved / 0 reserved, got \
             {} / {} / {}",
            split_run.stats.aborted_migrations,
            split_run.stats.demoted_pages,
            split_run.migration_reserved_frames(TierId::SLOW)
        ));
    }
    if control.stats.aborted_migrations != 0 || control.stats.demoted_pages != 512 {
        return Err(format!(
            "seed {seed:#x}: control run expected 0 aborts / 512 moved, got {} / {}",
            control.stats.aborted_migrations, control.stats.demoted_pages
        ));
    }
    Ok(())
}

/// Runs every metamorphic relation across `rounds` seeds derived from
/// `seed_base`; returns all failures (empty = pass).
pub fn run_all(seed_base: u64, rounds: u64) -> Vec<String> {
    let mut failures = Vec::new();
    for i in 0..rounds {
        let seed = seed_base.wrapping_add(i);
        if let Err(e) = check_queue_rate_monotonicity(seed) {
            failures.push(format!("queue-rate-monotonicity: {e}"));
        }
        if let Err(e) = check_huge_base_accounting(seed) {
            failures.push(format!("huge-base-accounting: {e}"));
        }
        if let Err(e) = check_split_aborts_inflight_huge(seed) {
            failures.push(format!("split-aborts-inflight-huge: {e}"));
        }
    }
    // The classifier check replays a full policy run; one seed suffices per
    // invocation (the stream itself contains thousands of samples).
    if let Err(e) = check_cit_classifier_monotonicity(seed_base) {
        failures.push(format!("cit-classifier-monotonicity: {e}"));
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_rate_monotonicity_holds() {
        for seed in 0..16u64 {
            check_queue_rate_monotonicity(seed).unwrap();
        }
    }

    #[test]
    fn cit_classifier_monotonicity_holds() {
        check_cit_classifier_monotonicity(0xC17).unwrap();
    }

    #[test]
    fn huge_base_accounting_agrees() {
        for seed in 0..4u64 {
            check_huge_base_accounting(seed).unwrap();
        }
    }

    #[test]
    fn split_abort_relation_holds() {
        for seed in 0..8u64 {
            check_split_aborts_inflight_huge(seed).unwrap();
        }
    }
}
