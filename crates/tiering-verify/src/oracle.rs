//! The substrate invariant oracle.
//!
//! [`InvariantOracle::check`] walks a [`TieredSystem`] and returns every
//! violated invariant. It is pure observation — no mutation, deterministic
//! output order — so it can run after every step of a fuzzed schedule. The
//! invariants are the ones page migration must never break (the class of
//! bug Nomad's transactional migration exists to prevent): frame
//! conservation, reverse-map agreement, PFN exclusivity, LRU/residency
//! consistency, watermark ordering, and migration-accounting identities.

use std::collections::HashMap;
use std::fmt;

use chrono_core::{QueueFlow, RetryFlow};
use tiered_mem::{
    FrameOwner, LruKind, PageFlags, Pfn, ProcessId, TierHealth, TierId, TieredSystem, Vpn,
    BASE_PAGE_BYTES, HUGE_2M_PAGES, MAX_TIERS,
};

/// One violated invariant, with enough detail to debug the failing state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable name of the invariant (used in reports and assertions).
    pub invariant: &'static str,
    /// Human-readable specifics: which page/frame/counter disagreed and how.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Checks every substrate invariant against a system snapshot.
#[derive(Debug, Default)]
pub struct InvariantOracle {
    /// Snapshots checked so far (for fuzz-run reporting).
    pub checks: u64,
}

impl InvariantOracle {
    /// Creates an oracle with a zeroed check counter.
    pub fn new() -> InvariantOracle {
        InvariantOracle::default()
    }

    /// Runs every invariant against `sys`; returns all violations found
    /// (empty means the snapshot is consistent).
    pub fn check(&mut self, sys: &TieredSystem) -> Vec<Violation> {
        self.checks += 1;
        let mut out = Vec::new();
        self.check_frame_conservation(sys, &mut out);
        self.check_page_tables(sys, &mut out);
        self.check_migrations(sys, &mut out);
        self.check_flag_words(sys, &mut out);
        self.check_lru(sys, &mut out);
        self.check_watermarks(sys, &mut out);
        self.check_stats(sys, &mut out);
        self.check_fault_quarantine(sys, &mut out);
        self.check_tier_health(sys, &mut out);
        out
    }

    /// Failure-domain invariants: a tier that has gone `Offline` holds no
    /// residency whatsoever (evacuation must have drained it — pages,
    /// reservations, everything), and the emergency evacuation lane
    /// conserves flow: every evacuated unit is rehomed on a healthy tier,
    /// spilled to swap, lost to a copy fault (and re-issued), or still in
    /// flight.
    fn check_tier_health(&self, sys: &TieredSystem, out: &mut Vec<Violation>) {
        let offline: Vec<TierId> = sys
            .config()
            .chain
            .ids()
            .filter(|&t| sys.tier_health(t) == TierHealth::Offline)
            .collect();
        for &tier in &offline {
            if sys.used_frames(tier) != 0 {
                out.push(Violation {
                    invariant: "tier_offline_residency",
                    detail: format!(
                        "{tier:?} is Offline but still holds {} used frames",
                        sys.used_frames(tier)
                    ),
                });
            }
        }
        // Walk direction: no PTE may claim residency in an offline tier
        // (catches tier-bit corruption the frame table cannot see). One
        // violation per offline tier keeps the report bounded.
        if !offline.is_empty() {
            for &tier in &offline {
                'walk: for pid in sys.pids() {
                    let space = &sys.process(pid).space;
                    for v in 0..space.pages() {
                        let e = space.entry(Vpn(v));
                        if !e.pfn.is_none() && e.tier() == tier {
                            out.push(Violation {
                                invariant: "tier_offline_residency",
                                detail: format!(
                                    "pid {} vpn {} claims residency in Offline {tier:?}",
                                    pid.0, v
                                ),
                            });
                            break 'walk;
                        }
                    }
                }
            }
        }
        let s = &sys.stats;
        let accounted = s.evac_rehomed_pages
            + s.evac_swapped_pages
            + s.evac_faulted_pages
            + sys.in_flight_evac_pages();
        if s.evacuated_pages != accounted {
            out.push(Violation {
                invariant: "evac_flow",
                detail: format!(
                    "evacuated {} != rehomed {} + swapped {} + faulted {} + in-flight {}",
                    s.evacuated_pages,
                    s.evac_rehomed_pages,
                    s.evac_swapped_pages,
                    s.evac_faulted_pages,
                    sys.in_flight_evac_pages()
                ),
            });
        }
    }

    /// Fault-injection bookkeeping: quarantined frames are permanently out
    /// of service — never on a free list, never owned by a mapping, never
    /// reserved by an in-flight copy (ownership covers both) — the
    /// quarantine counter matches the pools exactly, and offlined-frame
    /// flow balances: every offlined frame is still offline, restored, or
    /// was quarantined in place (that remainder bounded by the quarantine
    /// counter).
    fn check_fault_quarantine(&self, sys: &TieredSystem, out: &mut Vec<Violation>) {
        let mut quarantined_now = 0u64;
        for tier in sys.config().chain.ids() {
            for pfn in sys.quarantined_pfns(tier) {
                quarantined_now += 1;
                if sys.frame_is_free(tier, pfn) {
                    out.push(Violation {
                        invariant: "quarantine_isolation",
                        detail: format!(
                            "{tier:?} pfn {} is quarantined but sits on the free list",
                            pfn.0
                        ),
                    });
                }
                if let Some(owner) = sys.frame_owner(tier, pfn) {
                    out.push(Violation {
                        invariant: "quarantine_isolation",
                        detail: format!(
                            "{tier:?} pfn {} is quarantined but owned by pid {} vpn {}",
                            pfn.0, owner.pid.0, owner.vpn.0
                        ),
                    });
                }
            }
        }
        let s = &sys.stats;
        if s.quarantined_frames != quarantined_now {
            out.push(Violation {
                invariant: "quarantine_conservation",
                detail: format!(
                    "stats.quarantined_frames {} != {} frames in quarantine pools",
                    s.quarantined_frames, quarantined_now
                ),
            });
        }
        // Offlined frames can sit in any tier: capacity shrink targets one
        // tier at a time and a whole-tier offline empties its frame pool.
        let current: u64 = sys
            .config()
            .chain
            .ids()
            .map(|t| sys.offlined_frames(t) as u64)
            .sum();
        let outflow = s.restored_frames + current;
        if s.offlined_frames < outflow || s.offlined_frames - outflow > s.quarantined_frames {
            out.push(Violation {
                invariant: "offline_flow",
                detail: format!(
                    "offlined {} !~ restored {} + currently-offline {} (+ quarantined {})",
                    s.offlined_frames, s.restored_frames, current, s.quarantined_frames
                ),
            });
        }
    }

    /// Checks retry-pool flow conservation
    /// (`failed == retried + abandoned + pending`).
    pub fn check_retry_flow(flow: &RetryFlow) -> Option<Violation> {
        if flow.conserved() {
            None
        } else {
            Some(Violation {
                invariant: "retry_flow",
                detail: format!(
                    "failed {} != retried {} + abandoned {} + pending {}",
                    flow.failed, flow.retried, flow.abandoned, flow.pending
                ),
            })
        }
    }

    /// The runtime ⊆ static bridge check: every flag word in every page
    /// table must be inside the reachable set the tiering-analysis model
    /// checker enumerated from the declared transition relation. A word
    /// outside it means either the substrate performed a transition the
    /// model does not declare (a lifecycle bug or an undocumented
    /// behaviour) or the model's guards drifted from the code.
    fn check_flag_words(&self, sys: &TieredSystem, out: &mut Vec<Violation>) {
        for pid in sys.pids() {
            let space = &sys.process(pid).space;
            for v in 0..space.pages() {
                let e = space.entry(Vpn(v));
                let word = e.flags.bits();
                if !tiering_analysis::flag_word_reachable(word) {
                    out.push(Violation {
                        invariant: "flags_reachable",
                        detail: format!(
                            "pid {} vpn {} holds statically unreachable flag word {:#06x} ({})",
                            pid.0,
                            v,
                            word,
                            e.flags.describe()
                        ),
                    });
                }
            }
        }
    }

    /// Panics with a readable report if any invariant is violated. Meant for
    /// tests where a violation is a hard failure.
    pub fn assert_clean(&mut self, sys: &TieredSystem, context: &str) {
        let violations = self.check(sys);
        if !violations.is_empty() {
            let mut msg = format!("invariant violations ({context}):\n");
            for v in &violations {
                msg.push_str(&format!("  {v}\n"));
            }
            panic!("{msg}");
        }
    }

    /// Checks promotion-queue flow conservation
    /// (`offered == dequeued + dropped + queued`).
    pub fn check_queue_flow(flow: &QueueFlow) -> Option<Violation> {
        if flow.conserved() {
            None
        } else {
            Some(Violation {
                invariant: "queue_flow",
                detail: format!(
                    "offered {} != dequeued {} + dropped {} + queued {}",
                    flow.offered_pages, flow.dequeued_pages, flow.dropped_pages, flow.queued_pages
                ),
            })
        }
    }

    /// `used + free == total` per tier (frame-table internal consistency).
    fn check_frame_conservation(&self, sys: &TieredSystem, out: &mut Vec<Violation>) {
        for tier in sys.config().chain.ids() {
            let used = sys.used_frames(tier);
            let free = sys.free_frames(tier);
            let total = sys.total_frames(tier);
            if used + free != total {
                out.push(Violation {
                    invariant: "frame_conservation",
                    detail: format!("{tier:?}: used {used} + free {free} != total {total}"),
                });
            }
        }
    }

    /// Walks every page table: each resident base page maps a distinct,
    /// in-range PFN whose reverse-map entry points straight back; per-tier
    /// residency counts agree with the frame tables and the cached
    /// process/space counters; present huge blocks are fully resident in one
    /// tier.
    fn check_page_tables(&self, sys: &TieredSystem, out: &mut Vec<Violation>) {
        // PFN numbering spans the raw frame space: capacity shrink and
        // quarantine reduce the usable count without renumbering survivors.
        let tiers: Vec<TierId> = sys.config().chain.ids().collect();
        let totals: Vec<u32> = tiers.iter().map(|&t| sys.raw_frames(t)).collect();
        // One mapping seen per frame, per tier: `mapped_by[tier][pfn]`.
        let mut mapped_by: Vec<Vec<Option<(ProcessId, Vpn)>>> =
            totals.iter().map(|&n| vec![None; n as usize]).collect();
        let mut counted = vec![0u32; tiers.len()];

        for pid in sys.pids() {
            let space = &sys.process(pid).space;
            let mut resident_here = [0u32; MAX_TIERS];
            for v in 0..space.pages() {
                let vpn = Vpn(v);
                let e = space.entry(vpn);
                if e.pfn.is_none() {
                    continue;
                }
                let tier = e.tier();
                let ti = tier.index();
                resident_here[ti] += 1;
                counted[ti] += 1;
                if e.pfn.0 >= totals[ti] {
                    out.push(Violation {
                        invariant: "pfn_in_range",
                        detail: format!(
                            "pid {} vpn {} maps out-of-range {:?} in {tier:?}",
                            pid.0, v, e.pfn
                        ),
                    });
                    continue;
                }
                if let Some((opid, ovpn)) = mapped_by[ti][e.pfn.0 as usize] {
                    out.push(Violation {
                        invariant: "pfn_exclusive",
                        detail: format!(
                            "{tier:?} pfn {} mapped by pid {} vpn {} and pid {} vpn {}",
                            e.pfn.0, opid.0, ovpn.0, pid.0, v
                        ),
                    });
                } else {
                    mapped_by[ti][e.pfn.0 as usize] = Some((pid, vpn));
                }
                let expected = FrameOwner { pid, vpn };
                match sys.frame_owner(tier, Pfn(e.pfn.0)) {
                    Some(owner) if owner == expected => {}
                    other => out.push(Violation {
                        invariant: "reverse_map",
                        detail: format!(
                            "{tier:?} pfn {}: owner {:?}, but mapped by pid {} vpn {}",
                            e.pfn.0, other, pid.0, v
                        ),
                    }),
                }
            }

            let cached = space.resident_pages();
            if cached != resident_here {
                out.push(Violation {
                    invariant: "residency_cache",
                    detail: format!(
                        "pid {}: space counts {:?}, page walk counts {:?}",
                        pid.0, cached, resident_here
                    ),
                });
            }
            let proc_frames = sys.process(pid).resident_frames;
            let walked: u32 = resident_here.iter().sum();
            if proc_frames != walked {
                out.push(Violation {
                    invariant: "residency_cache",
                    detail: format!(
                        "pid {}: process.resident_frames {} != walked {}",
                        pid.0, proc_frames, walked
                    ),
                });
            }

            // Present, unsplit huge blocks are fully resident in one tier.
            if space.is_huge() {
                let mut head = 0u32;
                while head < space.pages() {
                    let hv = Vpn(head);
                    if space.is_huge_mapped(hv) && space.entry(hv).present() {
                        let tier = space.entry(hv).tier();
                        for off in 0..HUGE_2M_PAGES {
                            let e = space.entry(Vpn(head + off));
                            if e.pfn.is_none() || e.tier() != tier {
                                out.push(Violation {
                                    invariant: "huge_block_integrity",
                                    detail: format!(
                                        "pid {} block @{head}: base page {} not in {tier:?}",
                                        pid.0,
                                        head + off
                                    ),
                                });
                            }
                        }
                    }
                    head += HUGE_2M_PAGES;
                }
            }
        }

        // Frames-side conservation: every used frame is either mapped
        // exactly once or reserved by exactly one in-flight migration.
        for &tier in &tiers {
            let used = sys.used_frames(tier);
            let reserved = sys.migration_reserved_frames(tier);
            if counted[tier.index()] + reserved != used {
                out.push(Violation {
                    invariant: "frame_conservation",
                    detail: format!(
                        "{tier:?}: page walk found {} resident pages + {} reserved, \
                         frame table has {} used",
                        counted[tier.index()],
                        reserved,
                        used
                    ),
                });
            }
        }
    }

    /// Two-phase migration invariants: flow conservation
    /// (`begun == completed + aborted + in_flight`), reservation conservation
    /// (every transaction holds exactly `unit` distinct allocated destination
    /// frames that no PTE maps, and per-tier reservation sums agree), and the
    /// `MIGRATING` flag protocol (set on exactly the heads of in-flight
    /// transactions, which must be present and still resident in `from`).
    fn check_migrations(&self, sys: &TieredSystem, out: &mut Vec<Violation>) {
        let s = &sys.stats;
        let in_flight = sys.migration_in_flight_count() as u64;
        let faulted = s.transient_copy_faults + s.poisoned_copy_faults;
        if s.begun_migrations != s.completed_migrations + s.aborted_migrations + faulted + in_flight
        {
            out.push(Violation {
                invariant: "migration_flow",
                detail: format!(
                    "begun {} != completed {} + aborted {} + faulted {} + in-flight {}",
                    s.begun_migrations,
                    s.completed_migrations,
                    s.aborted_migrations,
                    faulted,
                    in_flight
                ),
            });
        }

        let tiers: Vec<TierId> = sys.config().chain.ids().collect();
        let totals: Vec<u32> = tiers.iter().map(|&t| sys.raw_frames(t)).collect();
        let mut reserved_seen: Vec<Vec<bool>> =
            totals.iter().map(|&n| vec![false; n as usize]).collect();
        let mut sums = vec![0u32; tiers.len()];
        // Heads with an open transaction, for the page-walk direction below.
        let mut txn_heads: std::collections::BTreeSet<(u16, u32)> =
            std::collections::BTreeSet::new();

        for txn in sys.in_flight_migrations() {
            txn_heads.insert((txn.pid.0, txn.head.0));
            let e = sys.process(txn.pid).space.entry(txn.head);
            if !e.flags.has(PageFlags::MIGRATING) || !e.present() || e.tier() != txn.from {
                out.push(Violation {
                    invariant: "migrating_flag",
                    detail: format!(
                        "txn {} pid {} head {}: expected PRESENT|MIGRATING in {:?}, \
                         found {} in {:?}",
                        txn.id,
                        txn.pid.0,
                        txn.head.0,
                        txn.from,
                        e.flags.describe(),
                        e.tier()
                    ),
                });
            }
            if txn.dest_pfns.len() != txn.unit as usize {
                out.push(Violation {
                    invariant: "reservation_conservation",
                    detail: format!(
                        "txn {}: holds {} reserved frames for a {}-page unit",
                        txn.id,
                        txn.dest_pfns.len(),
                        txn.unit
                    ),
                });
            }
            sums[txn.to.index()] += txn.unit;
            let ti = txn.to.index();
            for (off, &pfn) in txn.dest_pfns.iter().enumerate() {
                if pfn.0 >= totals[ti] {
                    out.push(Violation {
                        invariant: "reservation_conservation",
                        detail: format!(
                            "txn {}: reserved pfn {} out of range for {:?}",
                            txn.id, pfn.0, txn.to
                        ),
                    });
                    continue;
                }
                if reserved_seen[ti][pfn.0 as usize] {
                    out.push(Violation {
                        invariant: "reservation_conservation",
                        detail: format!("{:?} pfn {} reserved by two transactions", txn.to, pfn.0),
                    });
                }
                reserved_seen[ti][pfn.0 as usize] = true;
                let expected = FrameOwner {
                    pid: txn.pid,
                    vpn: Vpn(txn.head.0 + off as u32),
                };
                match sys.frame_owner(txn.to, pfn) {
                    Some(owner) if owner == expected => {}
                    other => out.push(Violation {
                        invariant: "reservation_conservation",
                        detail: format!(
                            "txn {}: {:?} pfn {} owner {:?}, expected {:?}",
                            txn.id, txn.to, pfn.0, other, expected
                        ),
                    }),
                }
            }
        }

        for &tier in &tiers {
            let engine = sys.migration_reserved_frames(tier);
            if sums[tier.index()] != engine {
                out.push(Violation {
                    invariant: "reservation_conservation",
                    detail: format!(
                        "{tier:?}: transactions hold {} frames, engine accounts {}",
                        sums[tier.index()],
                        engine
                    ),
                });
            }
        }

        // Walk direction: a MIGRATING bit without an open transaction is a
        // leak (the abort/complete path forgot to clear it).
        for pid in sys.pids() {
            let space = &sys.process(pid).space;
            for v in 0..space.pages() {
                let e = space.entry(Vpn(v));
                if e.flags.has(PageFlags::MIGRATING) {
                    if !e.present() {
                        out.push(Violation {
                            invariant: "migrating_flag",
                            detail: format!("pid {} vpn {} is MIGRATING but not PRESENT", pid.0, v),
                        });
                    }
                    if !txn_heads.contains(&(pid.0, v)) {
                        out.push(Violation {
                            invariant: "migrating_flag",
                            detail: format!(
                                "pid {} vpn {} is MIGRATING with no open transaction",
                                pid.0, v
                            ),
                        });
                    }
                }
            }
        }
    }

    /// Live LRU entries reference resident pages of their own tier, carry a
    /// list-kind flag matching the list they sit on, and no page is live on
    /// two lists of one tier at once.
    fn check_lru(&self, sys: &TieredSystem, out: &mut Vec<Violation>) {
        for tier in sys.config().chain.ids() {
            let mut live: HashMap<(u16, u32), LruKind> = HashMap::new();
            for kind in [LruKind::Active, LruKind::Inactive] {
                for entry in sys.lru_entries(tier, kind) {
                    if !sys.lru_entry_is_live(*entry, tier) {
                        continue; // lazily deleted; discarded when it surfaces
                    }
                    let e = sys.process(entry.pid).space.entry(entry.vpn);
                    let flagged_active = e.flags.has(PageFlags::LRU_ACTIVE);
                    if flagged_active != (kind == LruKind::Active) {
                        out.push(Violation {
                            invariant: "lru_kind_flag",
                            detail: format!(
                                "{tier:?} {kind:?}: pid {} vpn {} has LRU_ACTIVE={flagged_active}",
                                entry.pid.0, entry.vpn.0
                            ),
                        });
                    }
                    if let Some(prev) = live.insert((entry.pid.0, entry.vpn.0), kind) {
                        out.push(Violation {
                            invariant: "lru_exclusive",
                            detail: format!(
                                "{tier:?}: pid {} vpn {} live on {prev:?} and {kind:?}",
                                entry.pid.0, entry.vpn.0
                            ),
                        });
                    }
                }
            }
        }
    }

    /// `min <= low <= high <= pro` must hold whenever the system is
    /// observable.
    fn check_watermarks(&self, sys: &TieredSystem, out: &mut Vec<Violation>) {
        if !sys.watermarks.well_ordered() {
            out.push(Violation {
                invariant: "watermark_order",
                detail: format!("{:?}", sys.watermarks),
            });
        }
    }

    /// Counter identities: hint faults each cost a context switch, and
    /// migration bytes equal moved pages times the base page size — the
    /// huge-page and base-page accounting paths must agree on totals.
    fn check_stats(&self, sys: &TieredSystem, out: &mut Vec<Violation>) {
        let s = &sys.stats;
        if s.hint_faults > s.context_switches {
            out.push(Violation {
                invariant: "stats_context_switches",
                detail: format!(
                    "hint_faults {} > context_switches {}",
                    s.hint_faults, s.context_switches
                ),
            });
        }
        let moved = s.promoted_pages + s.demoted_pages;
        if s.migration_bytes != moved * BASE_PAGE_BYTES {
            out.push(Violation {
                invariant: "migration_accounting",
                detail: format!(
                    "migration_bytes {} != (promoted {} + demoted {}) * {}",
                    s.migration_bytes, s.promoted_pages, s.demoted_pages, BASE_PAGE_BYTES
                ),
            });
        }
        // Per-edge migration counters partition the totals exactly.
        let edge_promoted: u64 = s.promoted_per_edge.iter().sum();
        let edge_demoted: u64 = s.demoted_per_edge.iter().sum();
        if edge_promoted != s.promoted_pages || edge_demoted != s.demoted_pages {
            out.push(Violation {
                invariant: "migration_accounting",
                detail: format!(
                    "per-edge sums ({edge_promoted} promoted, {edge_demoted} demoted) != \
                     totals ({}, {})",
                    s.promoted_pages, s.demoted_pages
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::{MigrateMode, PageSize, SystemConfig};

    fn small_sys() -> (TieredSystem, ProcessId) {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(64, 512));
        let pid = sys.add_process(256, PageSize::Base);
        (sys, pid)
    }

    #[test]
    fn fresh_and_exercised_systems_are_clean() {
        let (mut sys, pid) = small_sys();
        let mut oracle = InvariantOracle::new();
        assert!(oracle.check(&sys).is_empty());
        for v in 0..128 {
            sys.access(pid, Vpn(v), v % 3 == 0);
        }
        let _ = sys.migrate(pid, Vpn(0), TierId::SLOW, MigrateMode::Async);
        let _ = sys.promote_with_reclaim(pid, Vpn(0), MigrateMode::Async);
        let _ = sys.swap_out(pid, Vpn(1));
        oracle.assert_clean(&sys, "exercised");
        assert_eq!(oracle.checks, 2);
    }

    #[test]
    fn duplicate_pfn_is_caught() {
        let (mut sys, pid) = small_sys();
        sys.access(pid, Vpn(0), false);
        sys.access(pid, Vpn(1), false);
        // Corrupt: vpn 1 steals vpn 0's frame.
        let stolen = sys.process(pid).space.entry(Vpn(0)).pfn;
        sys.process_mut(pid).space.entry_mut(Vpn(1)).pfn = stolen;
        let violations = InvariantOracle::new().check(&sys);
        assert!(
            violations.iter().any(|v| v.invariant == "pfn_exclusive"),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.invariant == "reverse_map"),
            "{violations:?}"
        );
    }

    #[test]
    fn residency_undercount_is_caught() {
        let (mut sys, pid) = small_sys();
        sys.access(pid, Vpn(0), false);
        sys.access(pid, Vpn(1), false);
        // Corrupt: drop a mapping without freeing its frame.
        sys.process_mut(pid).space.entry_mut(Vpn(1)).pfn = Pfn::NONE;
        let violations = InvariantOracle::new().check(&sys);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == "frame_conservation"),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.invariant == "residency_cache"),
            "{violations:?}"
        );
    }

    #[test]
    fn broken_watermarks_are_caught() {
        let (mut sys, _) = small_sys();
        sys.watermarks.pro = 0;
        sys.watermarks.high = 10;
        let violations = InvariantOracle::new().check(&sys);
        assert!(violations.iter().any(|v| v.invariant == "watermark_order"));
    }

    #[test]
    fn skewed_migration_bytes_are_caught() {
        let (mut sys, pid) = small_sys();
        sys.access(pid, Vpn(0), false);
        let _ = sys.migrate(pid, Vpn(0), TierId::SLOW, MigrateMode::Async);
        sys.stats.migration_bytes += 1;
        let violations = InvariantOracle::new().check(&sys);
        assert!(violations
            .iter()
            .any(|v| v.invariant == "migration_accounting"));
    }

    #[test]
    fn in_flight_and_retired_migration_states_are_clean() {
        let (mut sys, pid) = small_sys();
        let mut oracle = InvariantOracle::new();
        for v in 0..64 {
            sys.access(pid, Vpn(v), false);
        }
        // Open a demotion, check mid-flight, abort it with a write.
        sys.begin_migrate(pid, Vpn(0), TierId::SLOW, MigrateMode::Async)
            .unwrap();
        oracle.assert_clean(&sys, "demotion in flight");
        sys.access(pid, Vpn(0), true);
        oracle.assert_clean(&sys, "after write-abort");
        // Open another and let it retire.
        sys.begin_migrate(pid, Vpn(1), TierId::SLOW, MigrateMode::Async)
            .unwrap();
        sys.clock.advance(sim_clock::Nanos::from_millis(5));
        assert_eq!(sys.complete_due_migrations(), 1);
        oracle.assert_clean(&sys, "after completion");
    }

    #[test]
    fn leaked_migrating_flag_is_caught() {
        let (mut sys, pid) = small_sys();
        sys.access(pid, Vpn(0), false);
        sys.process_mut(pid)
            .space
            .entry_mut(Vpn(0))
            .flags
            .set(PageFlags::MIGRATING);
        let violations = InvariantOracle::new().check(&sys);
        assert!(
            violations.iter().any(|v| v.invariant == "migrating_flag"),
            "{violations:?}"
        );
    }

    #[test]
    fn migration_flow_skew_is_caught() {
        let (mut sys, _) = small_sys();
        sys.stats.begun_migrations += 1;
        let violations = InvariantOracle::new().check(&sys);
        assert!(
            violations.iter().any(|v| v.invariant == "migration_flow"),
            "{violations:?}"
        );
    }

    #[test]
    fn poisoned_and_shrunk_systems_are_clean() {
        let (mut sys, pid) = small_sys();
        let mut oracle = InvariantOracle::new();
        for v in 0..48 {
            sys.access(pid, Vpn(v), false);
        }
        let bad = sys.process(pid).space.entry(Vpn(3)).pfn;
        assert!(sys.poison_frame(TierId::FAST, bad));
        oracle.assert_clean(&sys, "after poison + soft-offline");
        sys.shrink_fast(8);
        oracle.assert_clean(&sys, "after shrink");
        sys.grow_fast(8);
        oracle.assert_clean(&sys, "after grow");
    }

    #[test]
    fn quarantine_counter_skew_is_caught() {
        let (mut sys, pid) = small_sys();
        sys.access(pid, Vpn(0), false);
        let pfn = sys.process(pid).space.entry(Vpn(0)).pfn;
        assert!(sys.poison_frame(TierId::FAST, pfn));
        sys.stats.quarantined_frames += 1;
        let violations = InvariantOracle::new().check(&sys);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == "quarantine_conservation"),
            "{violations:?}"
        );
    }

    #[test]
    fn offline_flow_skew_is_caught() {
        let (mut sys, _) = small_sys();
        sys.shrink_fast(4);
        sys.stats.restored_frames += 2; // claim restores that never happened
        let violations = InvariantOracle::new().check(&sys);
        assert!(
            violations.iter().any(|v| v.invariant == "offline_flow"),
            "{violations:?}"
        );
    }

    #[test]
    fn offline_tier_state_is_clean_and_skews_are_caught() {
        use sim_clock::Nanos;
        use tiered_mem::{TierEvent, TierEventKind};
        let mut sys = TieredSystem::new(SystemConfig::three_tier(64, 128, 512));
        let pid = sys.add_process(256, PageSize::Base);
        let mut oracle = InvariantOracle::new();
        for v in 0..192 {
            sys.access(pid, Vpn(v), false);
        }
        // Demote a few pages into the bottom tier so the drain has work.
        for v in 0..16 {
            let _ = sys.migrate(pid, Vpn(v), TierId(2), MigrateMode::Async);
        }
        sys.clock.advance(sim_clock::Nanos::from_millis(5));
        sys.complete_due_migrations();
        // Deadline already passed ⇒ the event force-drains synchronously.
        sys.apply_tier_event(TierEvent {
            at: Nanos(0),
            tier: TierId(2),
            kind: TierEventKind::Offline { deadline: Nanos(0) },
        });
        assert_eq!(sys.tier_health(TierId(2)), TierHealth::Offline);
        oracle.assert_clean(&sys, "after forced whole-tier offline");

        // Skew the evacuation ledger: flow conservation must flag it.
        sys.stats.evacuated_pages += 1;
        let violations = InvariantOracle::new().check(&sys);
        assert!(
            violations.iter().any(|v| v.invariant == "evac_flow"),
            "{violations:?}"
        );
        sys.stats.evacuated_pages -= 1;

        // Corrupt a live page's residency bits to point at the offline
        // tier: the no-residency-when-offline invariant must fire (the
        // residency cache goes with it — the corruption is deliberate).
        let live = (0..256)
            .map(Vpn)
            .find(|&v| sys.process(pid).space.entry(v).present())
            .expect("something is resident");
        sys.process_mut(pid)
            .space
            .entry_mut(live)
            .flags
            .set_tier(TierId(2));
        let violations = InvariantOracle::new().check(&sys);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == "tier_offline_residency"),
            "{violations:?}"
        );
    }

    #[test]
    fn retry_flow_check() {
        let ok = RetryFlow {
            failed: 10,
            retried: 4,
            abandoned: 1,
            pending: 5,
        };
        assert!(InvariantOracle::check_retry_flow(&ok).is_none());
        let bad = RetryFlow { pending: 6, ..ok };
        assert!(InvariantOracle::check_retry_flow(&bad).is_some());
    }

    #[test]
    fn queue_flow_check() {
        let ok = QueueFlow {
            offered_pages: 10,
            dequeued_pages: 4,
            dropped_pages: 1,
            queued_pages: 5,
        };
        assert!(InvariantOracle::check_queue_flow(&ok).is_none());
        let bad = QueueFlow {
            queued_pages: 6,
            ..ok
        };
        assert!(InvariantOracle::check_queue_flow(&bad).is_some());
    }
}
