//! Policy-level fuzzing: every tiering policy driven over seeded workloads
//! with the invariant oracle attached to the driver's inspect hook, plus the
//! differential determinism check (same seed ⇒ byte-identical trace digest).

use chrono_core::{CascadeChrono, ChronoConfig, ChronoPolicy};
use sim_clock::Nanos;
use tiered_mem::{FaultPlan, PageSize, SystemConfig, TieredSystem};
use tiering_policies::{
    autotiering::AutoTieringConfig, linux_nb::LinuxNbConfig, multiclock::MultiClockConfig,
    tpp::TppConfig, AutoTiering, DriverConfig, FlexMem, FlexMemConfig, LinuxNumaBalancing, Memtis,
    MemtisConfig, MultiClock, SimulationDriver, Telescope, TelescopeConfig, TieringPolicy, Tpp,
};
use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

use crate::oracle::{InvariantOracle, Violation};

/// Every policy the fuzz layer exercises: the paper's baselines, the two
/// related-work policies, and the Chrono tuning modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyUnderTest {
    /// Linux NUMA balancing in tiering mode.
    LinuxNb,
    /// Auto-Tiering (LAP vectors).
    AutoTiering,
    /// Multi-Clock.
    MultiClock,
    /// TPP.
    Tpp,
    /// Memtis (PEBS + histogram, huge-page splitting).
    Memtis,
    /// FlexMem (PEBS + timeliness hint faults).
    FlexMem,
    /// Telescope (tree-structured region profiling).
    Telescope,
    /// Chrono with full DCSC tuning.
    ChronoDcsc,
    /// Chrono with semi-automatic tuning (fixed rate limit).
    ChronoSemiAuto,
    /// Chrono with a fully manual threshold and rate limit.
    ChronoManual,
}

/// All fuzzed policies, in a stable order (reports and goldens rely on it).
pub const ALL_POLICIES: [PolicyUnderTest; 10] = [
    PolicyUnderTest::LinuxNb,
    PolicyUnderTest::AutoTiering,
    PolicyUnderTest::MultiClock,
    PolicyUnderTest::Tpp,
    PolicyUnderTest::Memtis,
    PolicyUnderTest::FlexMem,
    PolicyUnderTest::Telescope,
    PolicyUnderTest::ChronoDcsc,
    PolicyUnderTest::ChronoSemiAuto,
    PolicyUnderTest::ChronoManual,
];

impl PolicyUnderTest {
    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyUnderTest::LinuxNb => "linux-nb",
            PolicyUnderTest::AutoTiering => "autotiering",
            PolicyUnderTest::MultiClock => "multiclock",
            PolicyUnderTest::Tpp => "tpp",
            PolicyUnderTest::Memtis => "memtis",
            PolicyUnderTest::FlexMem => "flexmem",
            PolicyUnderTest::Telescope => "telescope",
            PolicyUnderTest::ChronoDcsc => "chrono-dcsc",
            PolicyUnderTest::ChronoSemiAuto => "chrono-semiauto",
            PolicyUnderTest::ChronoManual => "chrono-manual",
        }
    }

    /// The scaled Chrono configuration shared by the Chrono modes.
    fn chrono_config(scan_period: Nanos, step: u32) -> ChronoConfig {
        ChronoConfig {
            p_victim: 0.002,
            ..ChronoConfig::scaled(scan_period, step)
        }
    }

    /// Builds the policy at the fuzz scale. Chrono modes come back as the
    /// concrete [`ChronoPolicy`] so queue-flow conservation can be checked
    /// through its counters after the run.
    fn build(&self, scan_period: Nanos, step: u32) -> BuiltPolicy {
        match self {
            PolicyUnderTest::LinuxNb => {
                BuiltPolicy::Other(Box::new(LinuxNumaBalancing::new(LinuxNbConfig {
                    scan_period,
                    scan_step_pages: step,
                    promote_tier_frac_per_period: 0.23,
                })))
            }
            PolicyUnderTest::AutoTiering => {
                BuiltPolicy::Other(Box::new(AutoTiering::new(AutoTieringConfig {
                    scan_period,
                    scan_step_pages: step,
                    hot_lap_bits: 2,
                    demote_interval: scan_period / 4,
                })))
            }
            PolicyUnderTest::MultiClock => {
                BuiltPolicy::Other(Box::new(MultiClock::new(MultiClockConfig {
                    sweep_period: scan_period,
                    sweep_step_pages: step,
                    levels: 4,
                    promote_level: 3,
                    demote_interval: scan_period / 4,
                })))
            }
            PolicyUnderTest::Tpp => BuiltPolicy::Other(Box::new(Tpp::new(TppConfig {
                scan_period,
                scan_step_pages: step,
                demote_interval: scan_period / 4,
            }))),
            PolicyUnderTest::Memtis => BuiltPolicy::Other(Box::new(Memtis::new(MemtisConfig {
                sample_period: 512,
                migrate_interval: scan_period / 10,
                cooling_interval: scan_period * 4,
                adjust_interval: scan_period / 2,
                fast_fill_ratio: 0.95,
                split_enabled: true,
                seed: 0x4D454D,
            }))),
            PolicyUnderTest::FlexMem => BuiltPolicy::Other(Box::new(FlexMem::new(FlexMemConfig {
                sample_period: 509,
                scan_period,
                scan_step_pages: step,
                migrate_interval: scan_period / 10,
                cooling_interval: scan_period * 4,
                hot_counter: 4,
                demote_interval: scan_period / 4,
                seed: 0xF1E4,
            }))),
            PolicyUnderTest::Telescope => {
                BuiltPolicy::Other(Box::new(Telescope::new(TelescopeConfig {
                    window: scan_period / 8,
                    frontier_budget: 512,
                    hot_windows: 2,
                    demote_interval: scan_period / 2,
                })))
            }
            PolicyUnderTest::ChronoDcsc => BuiltPolicy::Chrono(Box::new(ChronoPolicy::new(
                Self::chrono_config(scan_period, step).variant_full(),
            ))),
            PolicyUnderTest::ChronoSemiAuto => BuiltPolicy::Chrono(Box::new(ChronoPolicy::new(
                Self::chrono_config(scan_period, step).variant_twice(),
            ))),
            PolicyUnderTest::ChronoManual => {
                let base = Self::chrono_config(scan_period, step);
                let cit = base.initial_cit_threshold;
                BuiltPolicy::Chrono(Box::new(ChronoPolicy::new(ChronoConfig {
                    tuning: chrono_core::TuningMode::Manual {
                        cit_threshold: cit,
                        rate_limit: 120 * 1024 * 1024,
                    },
                    ..base
                })))
            }
        }
    }

    /// Builds the policy at the fuzz scale as a plain trait object — the
    /// form tenant shards hold their policy instances in.
    pub fn build_boxed(&self, scan_period: Nanos, step: u32) -> Box<dyn TieringPolicy> {
        self.build(scan_period, step).into_dyn()
    }

    /// [`Self::build_boxed`] for a chain of `tiers` managed tiers. Two tiers
    /// reproduce the classic build bit for bit; on longer chains the Chrono
    /// modes come back as a [`CascadeChrono`] and TPP / Multi-Clock as their
    /// hop-wise generalizations. Policies without a chain-aware variant run
    /// their classic logic against the top edge.
    pub fn build_boxed_tiers(
        &self,
        scan_period: Nanos,
        step: u32,
        tiers: usize,
    ) -> Box<dyn TieringPolicy> {
        if tiers == 2 {
            return self.build_boxed(scan_period, step);
        }
        match self {
            PolicyUnderTest::MultiClock => Box::new(MultiClock::for_tiers(
                MultiClockConfig {
                    sweep_period: scan_period,
                    sweep_step_pages: step,
                    levels: 4,
                    promote_level: 3,
                    demote_interval: scan_period / 4,
                },
                tiers,
            )),
            PolicyUnderTest::Tpp => Box::new(Tpp::for_tiers(
                TppConfig {
                    scan_period,
                    scan_step_pages: step,
                    demote_interval: scan_period / 4,
                },
                tiers,
            )),
            PolicyUnderTest::ChronoDcsc => Box::new(CascadeChrono::new(
                Self::chrono_config(scan_period, step).variant_full(),
                tiers,
            )),
            PolicyUnderTest::ChronoSemiAuto => Box::new(CascadeChrono::new(
                Self::chrono_config(scan_period, step).variant_twice(),
                tiers,
            )),
            PolicyUnderTest::ChronoManual => {
                let base = Self::chrono_config(scan_period, step);
                let cit = base.initial_cit_threshold;
                Box::new(CascadeChrono::new(
                    ChronoConfig {
                        tuning: chrono_core::TuningMode::Manual {
                            cit_threshold: cit,
                            rate_limit: 120 * 1024 * 1024,
                        },
                        ..base
                    },
                    tiers,
                ))
            }
            _ => self.build_boxed(scan_period, step),
        }
    }

    /// Whether this policy embeds Chrono's promotion queue (and therefore
    /// must satisfy queue-flow conservation).
    pub fn is_chrono(&self) -> bool {
        matches!(
            self,
            PolicyUnderTest::ChronoDcsc
                | PolicyUnderTest::ChronoSemiAuto
                | PolicyUnderTest::ChronoManual
        )
    }
}

/// A built policy: Chrono held concretely (its queue-flow counters are
/// checked after the run), everything else behind the trait object.
enum BuiltPolicy {
    /// One of the Chrono tuning modes.
    Chrono(Box<ChronoPolicy>),
    /// Any other policy.
    Other(Box<dyn TieringPolicy>),
}

impl BuiltPolicy {
    fn as_dyn(&mut self) -> &mut dyn TieringPolicy {
        match self {
            BuiltPolicy::Chrono(c) => &mut **c,
            BuiltPolicy::Other(b) => &mut **b,
        }
    }

    fn into_dyn(self) -> Box<dyn TieringPolicy> {
        match self {
            BuiltPolicy::Chrono(c) => c,
            BuiltPolicy::Other(b) => b,
        }
    }
}

/// Outcome of one seeded policy run.
#[derive(Debug, Clone)]
pub struct PolicyRunReport {
    /// The policy that ran.
    pub policy: &'static str,
    /// The seed the workload and system shape were derived from.
    pub seed: u64,
    /// Stable digest of the recorded trace (determinism/golden checks).
    pub digest: u64,
    /// Accesses executed.
    pub accesses: u64,
    /// Oracle snapshots taken during the run.
    pub oracle_checks: u64,
    /// Tier health-state transitions the run recorded (zero on fault-free
    /// runs; the tier-chaos effectiveness self-test keys on it).
    pub tier_health_transitions: u64,
    /// Pages the emergency evacuation lane issued (zero unless a tier went
    /// offline mid-run).
    pub evacuated_pages: u64,
    /// Violations found (first few, deduplicated by invariant).
    pub violations: Vec<Violation>,
}

impl PolicyRunReport {
    /// Whether the run satisfied every invariant.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Derives the fuzz-scale system + workload shape for a seed:
/// `(total_frames, workload_pages, workload_seed)`. Shared with the sharded
/// runner so single-tenant sharded runs reproduce the classic shapes.
pub(crate) fn case_shape(seed: u64) -> (u32, u32, u64) {
    let mut rng = sim_clock::DetRng::seed(seed ^ 0x9017_CEA5_E5EE_D000);
    let total_frames = 2048u32 << rng.below(2); // 2048 or 4096
    let pages = total_frames / 2 + rng.below(total_frames as u64 / 4) as u32;
    let wl_seed = rng.next_u64();
    (total_frames, pages, wl_seed)
}

/// Runs one policy over one seeded workload with the oracle attached to the
/// driver's inspect hook (checked every `ORACLE_STRIDE` steps and once at the
/// end). Returns the report; never panics on violations — callers decide.
pub fn run_policy_case(policy: PolicyUnderTest, seed: u64, run_millis: u64) -> PolicyRunReport {
    run_policy_case_with_plan(policy, seed, run_millis, None)
}

/// [`run_policy_case`] with an optional fault plan attached to the system.
/// The faulty goldens and the fault-storm policy sweep run through here;
/// `None` reproduces the fault-free path bit for bit.
pub fn run_policy_case_with_plan(
    policy: PolicyUnderTest,
    seed: u64,
    run_millis: u64,
    fault_plan: Option<FaultPlan>,
) -> PolicyRunReport {
    const ORACLE_STRIDE: u64 = 128;
    const MAX_KEPT: usize = 8;

    let (total_frames, pages, wl_seed) = case_shape(seed);
    let mut cfg = SystemConfig::quarter_fast(total_frames);
    cfg.fault_plan = fault_plan;
    let mut sys = TieredSystem::new(cfg);
    sys.enable_tracing(1 << 12);
    let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(pages, 0.7, wl_seed));
    sys.add_process(w.address_space_pages(), PageSize::Base);
    let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];

    let scan_period = Nanos::from_millis(5);
    let mut built = policy.build(scan_period, 512);

    let mut oracle = InvariantOracle::new();
    let mut violations: Vec<Violation> = Vec::new();
    let mut steps = 0u64;
    let driver = SimulationDriver::new(DriverConfig {
        run_for: Nanos::from_millis(run_millis),
        ..Default::default()
    });
    let result = driver.run_inspected(
        &mut sys,
        &mut wls,
        built.as_dyn(),
        |_, _, _, _| {},
        |s| {
            steps += 1;
            if steps.is_multiple_of(ORACLE_STRIDE) && violations.len() < MAX_KEPT {
                violations.extend(oracle.check(s));
                violations.truncate(MAX_KEPT);
            }
        },
    );
    if violations.len() < MAX_KEPT {
        violations.extend(oracle.check(&sys));
        violations.truncate(MAX_KEPT);
    }

    // Chrono modes additionally expose promotion-queue and retry-pool flow
    // counters; check conservation through the concrete policy handle.
    if let BuiltPolicy::Chrono(c) = &built {
        if let Some(v) = InvariantOracle::check_queue_flow(&c.queue_flow()) {
            violations.push(v);
        }
        if let Some(v) = InvariantOracle::check_retry_flow(&c.retry_flow()) {
            violations.push(v);
        }
    }

    PolicyRunReport {
        policy: policy.name(),
        seed,
        digest: sys.trace.digest(),
        accesses: result.accesses,
        oracle_checks: oracle.checks,
        tier_health_transitions: sys.stats.tier_health_transitions,
        evacuated_pages: sys.stats.evacuated_pages,
        violations,
    }
}

/// Differential determinism check: runs the policy twice on the same seed
/// and returns the two digests (equal iff the pipeline is deterministic).
pub fn determinism_digests(policy: PolicyUnderTest, seed: u64, run_millis: u64) -> (u64, u64) {
    let a = run_policy_case(policy, seed, run_millis);
    let b = run_policy_case(policy, seed, run_millis);
    (a.digest, b.digest)
}

/// Policies snapshotted on the three-tier golden chain: cascaded Chrono
/// (full DCSC tuning per edge) and the hop-wise TPP generalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreeTierPolicy {
    /// [`CascadeChrono`] over three managed tiers (two edges).
    ChronoDcsc3,
    /// [`Tpp`] generalized to three managed tiers.
    Tpp3,
}

/// All three-tier golden policies, in the order the snapshot table uses.
pub const THREE_TIER_POLICIES: [ThreeTierPolicy; 2] =
    [ThreeTierPolicy::ChronoDcsc3, ThreeTierPolicy::Tpp3];

impl ThreeTierPolicy {
    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            ThreeTierPolicy::ChronoDcsc3 => "chrono-dcsc3",
            ThreeTierPolicy::Tpp3 => "tpp3",
        }
    }
}

/// Runs one three-tier policy over the seeded workload shape on a
/// DRAM+CXL+PMem chain, with the oracle attached exactly as
/// [`run_policy_case`] does. The cascade's per-pair queue/retry flows are
/// conservation-checked after the run.
pub fn run_three_tier_case(policy: ThreeTierPolicy, seed: u64, run_millis: u64) -> PolicyRunReport {
    run_three_tier_case_with_plan(policy, seed, run_millis, None)
}

/// [`run_three_tier_case`] with an optional fault plan attached — the
/// tier-chaos fuzz profile runs through here with plans that take whole
/// tiers offline mid-run. `None` reproduces the fault-free path bit for
/// bit.
pub fn run_three_tier_case_with_plan(
    policy: ThreeTierPolicy,
    seed: u64,
    run_millis: u64,
    fault_plan: Option<FaultPlan>,
) -> PolicyRunReport {
    const ORACLE_STRIDE: u64 = 128;
    const MAX_KEPT: usize = 8;

    let (total_frames, pages, wl_seed) = case_shape(seed);
    // Same total capacity as the two-tier shape, split into a chain: a small
    // top, a mid twice its size, and the remainder at the bottom.
    let fast = total_frames / 8;
    let mid = total_frames / 4;
    let mut cfg = SystemConfig::three_tier(fast, mid, total_frames - fast - mid);
    if let Some(plan) = &fault_plan {
        plan.validate_for(3).expect("plan fits a three-tier chain");
    }
    cfg.fault_plan = fault_plan;
    let mut sys = TieredSystem::new(cfg);
    sys.enable_tracing(1 << 12);
    let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(pages, 0.7, wl_seed));
    sys.add_process(w.address_space_pages(), PageSize::Base);
    let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];

    let scan_period = Nanos::from_millis(5);
    let mut cascade: Option<Box<CascadeChrono>> = None;
    let mut other: Option<Box<dyn TieringPolicy>> = None;
    match policy {
        ThreeTierPolicy::ChronoDcsc3 => {
            let cfg = PolicyUnderTest::chrono_config(scan_period, 512).variant_full();
            cascade = Some(Box::new(CascadeChrono::new(cfg, 3)));
        }
        ThreeTierPolicy::Tpp3 => {
            other = Some(Box::new(Tpp::for_tiers(
                TppConfig {
                    scan_period,
                    scan_step_pages: 512,
                    demote_interval: scan_period / 4,
                },
                3,
            )));
        }
    }
    let policy_dyn: &mut dyn TieringPolicy = match (&mut cascade, &mut other) {
        (Some(c), _) => &mut **c,
        (_, Some(o)) => &mut **o,
        _ => unreachable!(),
    };

    let mut oracle = InvariantOracle::new();
    let mut violations: Vec<Violation> = Vec::new();
    let mut steps = 0u64;
    let driver = SimulationDriver::new(DriverConfig {
        run_for: Nanos::from_millis(run_millis),
        ..Default::default()
    });
    let result = driver.run_inspected(
        &mut sys,
        &mut wls,
        policy_dyn,
        |_, _, _, _| {},
        |s| {
            steps += 1;
            if steps.is_multiple_of(ORACLE_STRIDE) && violations.len() < MAX_KEPT {
                violations.extend(oracle.check(s));
                violations.truncate(MAX_KEPT);
            }
        },
    );
    if violations.len() < MAX_KEPT {
        violations.extend(oracle.check(&sys));
        violations.truncate(MAX_KEPT);
    }
    if let Some(c) = &cascade {
        for f in c.queue_flows() {
            if let Some(v) = InvariantOracle::check_queue_flow(&f) {
                violations.push(v);
            }
        }
        for f in c.retry_flows() {
            if let Some(v) = InvariantOracle::check_retry_flow(&f) {
                violations.push(v);
            }
        }
    }

    PolicyRunReport {
        policy: policy.name(),
        seed,
        digest: sys.trace.digest(),
        accesses: result.accesses,
        oracle_checks: oracle.checks,
        tier_health_transitions: sys.stats.tier_health_transitions,
        evacuated_pages: sys.stats.evacuated_pages,
        violations,
    }
}

/// One tier-chaos fuzz case: a three-tier cascade run under a seed-chosen
/// failure-domain plan — half the seeds get the canonical arc
/// ([`FaultPlan::canonical3`]: degrade, mid-tier offline with a live
/// evacuation window, rejoin), the other half the storm
/// ([`FaultPlan::storm3`]: staggered offline/online cycles on both lower
/// tiers plus capacity wobble) — with the policy alternating between the
/// cascaded Chrono and the hop-wise TPP generalization.
pub fn fuzz_one_tier_chaos(seed: u64, run_millis: u64) -> PolicyRunReport {
    let horizon = Nanos::from_millis(run_millis);
    let plan = if seed & 1 == 0 {
        FaultPlan::canonical3(seed, horizon)
    } else {
        FaultPlan::storm3(seed, horizon)
    };
    let policy = THREE_TIER_POLICIES[(seed >> 1) as usize % THREE_TIER_POLICIES.len()];
    run_three_tier_case_with_plan(policy, seed, run_millis, Some(plan))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_runs_clean_on_one_seed() {
        for p in ALL_POLICIES {
            let r = run_policy_case(p, 0x5EED, 20);
            assert!(r.accesses > 0, "{} did nothing", r.policy);
            assert!(r.oracle_checks > 0, "{} was never checked", r.policy);
            assert!(
                r.clean(),
                "{} violated invariants: {:?}",
                r.policy,
                r.violations
            );
        }
    }

    #[test]
    fn chrono_modes_run_clean_and_deterministic_under_canonical_faults() {
        let plan = FaultPlan::canonical(7, Nanos::from_millis(20));
        for p in ALL_POLICIES.into_iter().filter(|p| p.is_chrono()) {
            let a = run_policy_case_with_plan(p, 0x5EED, 20, Some(plan.clone()));
            let b = run_policy_case_with_plan(p, 0x5EED, 20, Some(plan.clone()));
            assert!(a.clean(), "{} violated: {:?}", a.policy, a.violations);
            assert_eq!(
                a.digest, b.digest,
                "{} faulty run nondeterministic",
                a.policy
            );
            // The plan must actually perturb the run (the capacity event
            // alone guarantees a trace divergence).
            let clean = run_policy_case(p, 0x5EED, 20);
            assert_ne!(a.digest, clean.digest, "{} plan had no effect", a.policy);
        }
    }

    #[test]
    fn three_tier_policies_run_clean_and_deterministic() {
        for p in THREE_TIER_POLICIES {
            let a = run_three_tier_case(p, 0x5EED, 20);
            let b = run_three_tier_case(p, 0x5EED, 20);
            assert!(a.accesses > 0, "{} did nothing", a.policy);
            assert!(a.clean(), "{} violated: {:?}", a.policy, a.violations);
            assert_eq!(a.digest, b.digest, "{} nondeterministic", a.policy);
        }
    }

    #[test]
    fn tier_chaos_cases_run_clean_deterministic_and_actually_fail_tiers() {
        // Both plan flavours (even seed: canonical3, odd seed: storm3) must
        // run invariant-clean, replay bit for bit, and genuinely exercise
        // the failure-domain machinery — a chaos profile whose tiers never
        // fail tests nothing.
        let mut transitions = 0u64;
        let mut evacuated = 0u64;
        for seed in 0x7C_0000..0x7C_0004u64 {
            let a = fuzz_one_tier_chaos(seed, 20);
            let b = fuzz_one_tier_chaos(seed, 20);
            assert!(a.accesses > 0, "{} did nothing", a.policy);
            assert!(a.clean(), "{} violated: {:?}", a.policy, a.violations);
            assert_eq!(
                a.digest, b.digest,
                "{} chaos run nondeterministic",
                a.policy
            );
            transitions += a.tier_health_transitions;
            evacuated += a.evacuated_pages;
        }
        assert!(transitions > 0, "no tier ever changed health state");
        assert!(
            evacuated > 0,
            "no evacuation lane traffic across chaos seeds"
        );
    }

    #[test]
    fn chrono_digest_differs_across_seeds() {
        let a = run_policy_case(PolicyUnderTest::ChronoDcsc, 1, 20);
        let b = run_policy_case(PolicyUnderTest::ChronoDcsc, 2, 20);
        assert_ne!(a.digest, b.digest, "different seeds must diverge");
    }
}
