//! Sharded (multi-tenant) policy runs with cross-shard invariant checking.
//!
//! This is the verification face of the `tiering_policies::shard` runner:
//! it derives a deterministic multi-tenant case from a seed (partitioned
//! frame pools, skewed tenant weights, per-tenant workload streams split
//! from the run seed), runs it at any worker-thread count, and checks three
//! new cross-shard invariants on top of the per-shard oracle sweep:
//!
//! - **global frame conservation across shards** — every shard's tier
//!   capacities still sum to the partition plan's global pools (no frames
//!   created, destroyed, or silently shared);
//! - **PFN exclusivity across tenants** — the partition plan is contiguous,
//!   disjoint, and exhaustive, and every shard's tables are sized to its
//!   partition (two tenants can never address the same global frame);
//! - **per-tenant slot-flow conservation** — opened migration transactions
//!   balance against their outcomes:
//!   `begun == completed + aborted + transient + poisoned + in_flight`;
//! - **canonical admission grants** — every barrier's applied slot grants
//!   are replayed through the chrono-race model's independently implemented
//!   `tiering_analysis::canonical_grants` (N-version programming: same
//!   spec, deliberately different structure) and must agree exactly.
//!
//! [`run_sharded_case_permuted`] additionally shuffles the shard step order
//! inside every barrier window (seeded Fisher–Yates) — the dynamic
//! counterpart of the chrono-race interleaving model: since shards share
//! nothing between barriers, every digest must survive any step order.
//!
//! A single-tenant case with the admission hook off is built through the
//! exact classic-case constructor, so its digest reproduces today's golden
//! tables byte for byte — the compat surface the thread-invariance suite
//! pins.

use sim_clock::{DetRng, Nanos};
use tiered_mem::{
    FaultPlan, PageSize, PartitionPlan, SystemConfig, TierEvent, TierId, TieredSystem,
};
use tiering_analysis::{canonical_grants, RaceClaim};
use tiering_policies::{
    AdmissionConfig, BarrierAudit, DriverConfig, ShardedConfig, ShardedSim, TenantShard,
};
use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

use crate::oracle::{InvariantOracle, Violation};
use crate::policy_fuzz::{case_shape, PolicyUnderTest, ALL_POLICIES};

/// Stream id the per-tenant weight RNG is split on.
const WEIGHT_STREAM: u64 = 0x57A5_0001;
/// Stream id per-tenant workload seeds are split on (xored with tenant id).
const WORKLOAD_STREAM: u64 = 0x3AD3_0000;
/// Stream id per-tenant fault plans are split on (tenant-storm only).
const FAULT_STREAM: u64 = 0xFA57_0000;

/// Scan period (and barrier interval) of every sharded fuzz case — matches
/// the classic fuzz scale so single-tenant runs reproduce classic digests.
const SCAN_PERIOD_MS: u64 = 5;

/// Tenant count of the committed shard golden (see `golden::compute_shard_golden`).
pub const SHARD_GOLDEN_TENANTS: usize = 3;

/// Outcome of one sharded policy case.
#[derive(Debug, Clone)]
pub struct ShardedCaseReport {
    /// The policy every tenant ran (or a label naming a per-tenant mix).
    pub policy: &'static str,
    /// Case seed.
    pub seed: u64,
    /// Tenants simulated.
    pub tenants: usize,
    /// Worker threads used (must not affect any other field).
    pub threads: usize,
    /// Combined digest (single tenant: that tenant's classic digest).
    pub combined_digest: u64,
    /// Per-tenant trace digests, tenant order.
    pub tenant_digests: Vec<u64>,
    /// Total accesses across tenants.
    pub accesses: u64,
    /// Admission (backpressure) rejections summed across tenants.
    pub backpressure_rejects: u64,
    /// Cumulative slot grants per tenant (zero when the hook is off).
    pub granted_slots: Vec<u64>,
    /// Gini coefficient of the slot grants.
    pub slot_gini: f64,
    /// `(min, max)` per-tenant FMAR.
    pub fmar_spread: (f64, f64),
    /// Tier health-state transitions summed across tenants (zero unless the
    /// case schedules tier failure-domain events).
    pub tier_health_transitions: u64,
    /// Emergency evacuation-lane pages summed across tenants.
    pub evacuated_pages: u64,
    /// All violations found (per-shard oracle + cross-shard invariants).
    pub violations: Vec<Violation>,
}

impl ShardedCaseReport {
    /// Whether the run satisfied every invariant.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Skewed per-tenant admission weights for a case seed (1..=8, one RNG
/// stream independent of workload content, so weights are stable across
/// tenant/thread counts of the same seed).
pub fn tenant_weights(seed: u64, tenants: usize) -> Vec<u64> {
    let mut rng = DetRng::split(seed, WEIGHT_STREAM);
    (0..tenants).map(|_| 1 + rng.below(8)).collect()
}

/// Builds the shards for a seeded multi-tenant case: the global fuzz-shape
/// frame pool split by weighted partition, per-tenant skewed workloads on
/// split RNG streams, one policy instance per tenant. `fault_plan_for`
/// attaches an optional plan per tenant (id-keyed, so plans are stable
/// across thread counts).
fn build_shards(
    policy_for: &dyn Fn(u32) -> PolicyUnderTest,
    seed: u64,
    tenants: usize,
    run_millis: u64,
    fault_plan_for: &dyn Fn(u32) -> Option<FaultPlan>,
) -> (Vec<TenantShard>, PartitionPlan) {
    let (total_frames, pages, wl_seed) = case_shape(seed);
    let scan_period = Nanos::from_millis(SCAN_PERIOD_MS);
    let driver = DriverConfig {
        run_for: Nanos::from_millis(run_millis),
        ..Default::default()
    };

    if tenants == 1 {
        // The classic constructor, verbatim — single-tenant sharded runs
        // must reproduce `run_policy_case` digests byte for byte.
        let mut cfg = SystemConfig::quarter_fast(total_frames);
        cfg.fault_plan = fault_plan_for(0);
        let mut sys = TieredSystem::new(cfg);
        sys.enable_tracing(1 << 12);
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(pages, 0.7, wl_seed));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let shard = TenantShard::new(
            0,
            1,
            sys,
            vec![Box::new(w)],
            policy_for(0).build_boxed(scan_period, 512),
            driver,
        );
        let plan = PartitionPlan::split_even(total_frames / 4, total_frames - total_frames / 4, 1);
        return (vec![shard], plan);
    }

    let weights = tenant_weights(seed, tenants);
    let fast_total = total_frames / 4;
    let slow_total = total_frames - fast_total;
    let plan = PartitionPlan::split_weighted(fast_total, slow_total, &weights);
    let shards = (0..tenants)
        .map(|i| {
            let part = plan.part(i);
            let mut cfg = SystemConfig::dram_pmem(part.fast_frames(), part.slow_frames());
            cfg.fault_plan = fault_plan_for(i as u32);
            let mut sys = TieredSystem::new(cfg);
            sys.enable_tracing(1 << 10);
            // Working set scales with the tenant's partition so every shard
            // is under comparable pressure; the access stream itself comes
            // from a tenant-id-keyed split of the workload seed.
            let tenant_pages =
                ((pages as u64 * part.fast_frames() as u64 / fast_total as u64) as u32).max(64);
            let tenant_seed = DetRng::split(wl_seed, WORKLOAD_STREAM ^ i as u64).next_u64();
            let w =
                PmbenchWorkload::new(PmbenchConfig::paper_skewed(tenant_pages, 0.7, tenant_seed));
            sys.add_process(w.address_space_pages(), PageSize::Base);
            TenantShard::new(
                i as u32,
                weights[i],
                sys,
                vec![Box::new(w) as Box<dyn Workload>],
                policy_for(i as u32).build_boxed(scan_period, 512),
                driver.clone(),
            )
        })
        .collect();
    (shards, plan)
}

/// Per-tenant slot-flow conservation: every opened migration transaction is
/// accounted for by exactly one outcome.
fn check_slot_flow(shard: &TenantShard) -> Option<Violation> {
    let s = &shard.sys.stats;
    let accounted = s.completed_migrations
        + s.aborted_migrations
        + s.transient_copy_faults
        + s.poisoned_copy_faults
        + shard.sys.migration_in_flight_count() as u64;
    if s.begun_migrations != accounted {
        return Some(Violation {
            invariant: "tenant-slot-flow",
            detail: format!(
                "tenant {}: begun {} != completed {} + aborted {} + transient {} \
                 + poisoned {} + in_flight {}",
                shard.id,
                s.begun_migrations,
                s.completed_migrations,
                s.aborted_migrations,
                s.transient_copy_faults,
                s.poisoned_copy_faults,
                shard.sys.migration_in_flight_count(),
            ),
        });
    }
    None
}

/// N-version admission oracle: replays one barrier's decision through the
/// chrono-race model's independently implemented
/// [`tiering_analysis::canonical_grants`] (closed-form round-robin, u128
/// arithmetic — deliberately structured nothing like the shipped
/// `admission_grants`) and flags any disagreement with what the runner
/// actually applied.
fn check_admission_audit(audit: &BarrierAudit, tenants: usize, out: &mut Vec<Violation>) {
    let claims: Vec<RaceClaim> = audit
        .claims
        .iter()
        .map(|c| RaceClaim {
            weight: c.weight,
            starvation: c.starvation,
        })
        .collect();
    let canonical = canonical_grants(audit.total_slots, &claims);
    let mut expected = vec![0u64; tenants];
    for (k, &id) in audit.active.iter().enumerate() {
        expected[id as usize] = canonical[k];
    }
    if audit.grants != expected {
        out.push(Violation {
            invariant: "admission-grants-canonical",
            detail: format!(
                "barrier {}: applied grants {:?} != canonical {:?} \
                 (active {:?}, {} slots)",
                audit.barrier, audit.grants, expected, audit.active, audit.total_slots
            ),
        });
    }
}

/// Cross-shard invariants over the post-run shards: global frame
/// conservation against the partition plan and PFN exclusivity.
fn check_cross_shard(shards: &[TenantShard], plan: &PartitionPlan, out: &mut Vec<Violation>) {
    if !plan.covers_exactly() {
        out.push(Violation {
            invariant: "pfn-exclusivity-across-tenants",
            detail: "partition plan is not contiguous/disjoint/exhaustive".to_string(),
        });
    }
    let mut fast_sum = 0u64;
    let mut slow_sum = 0u64;
    for s in shards {
        let part = plan.part(s.id as usize);
        // Capacity per shard must still equal its partition: usable plus
        // quarantined/offlined frames (faults take frames out of service
        // but never out of the partition).
        let fast_cap = s.sys.total_frames(TierId::FAST) as u64
            + s.sys.quarantined_frames(TierId::FAST) as u64
            + s.sys.offlined_frames(TierId::FAST) as u64;
        let slow_cap = s.sys.total_frames(TierId::SLOW) as u64
            + s.sys.quarantined_frames(TierId::SLOW) as u64
            + s.sys.offlined_frames(TierId::SLOW) as u64;
        if fast_cap != part.fast_frames() as u64 || slow_cap != part.slow_frames() as u64 {
            out.push(Violation {
                invariant: "global-frame-conservation",
                detail: format!(
                    "tenant {}: capacity ({fast_cap}, {slow_cap}) drifted from partition \
                     ({}, {})",
                    s.id,
                    part.fast_frames(),
                    part.slow_frames()
                ),
            });
        }
        fast_sum += fast_cap;
        slow_sum += slow_cap;
    }
    if fast_sum != plan.total_fast() as u64 || slow_sum != plan.total_slow() as u64 {
        out.push(Violation {
            invariant: "global-frame-conservation",
            detail: format!(
                "shard capacities sum to ({fast_sum}, {slow_sum}), plan holds ({}, {})",
                plan.total_fast(),
                plan.total_slow()
            ),
        });
    }
}

/// Runs one sharded policy case: `tenants` shards of `policy` over the
/// seed-derived partitioned pool, stepped by `threads` workers, with the
/// admission hook optionally enabled (its slot pool spans the global
/// `MigrationSpec` default). Violations never panic — callers decide.
pub fn run_sharded_case(
    policy: PolicyUnderTest,
    seed: u64,
    run_millis: u64,
    tenants: usize,
    threads: usize,
    admission: bool,
) -> ShardedCaseReport {
    let slots = admission.then(|| AdmissionConfig::default().total_slots);
    run_sharded_case_with_plans(policy, seed, run_millis, tenants, threads, slots, &|_| None)
}

/// [`run_sharded_case`] with an explicit admission slot pool (`None` = hook
/// off) and a per-tenant fault-plan selector (tenant-id keyed so the same
/// plans attach regardless of thread count).
pub fn run_sharded_case_with_plans(
    policy: PolicyUnderTest,
    seed: u64,
    run_millis: u64,
    tenants: usize,
    threads: usize,
    admission_slots: Option<usize>,
    fault_plan_for: &dyn Fn(u32) -> Option<FaultPlan>,
) -> ShardedCaseReport {
    run_sharded_case_mixed(
        policy.name(),
        &|_| policy,
        seed,
        run_millis,
        tenants,
        threads,
        admission_slots,
        fault_plan_for,
    )
}

/// The fully general sharded case: a per-tenant policy selector (tenant-id
/// keyed, so assignments are stable across thread counts) instead of one
/// policy for every tenant. `label` names the mix in the report.
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_case_mixed(
    label: &'static str,
    policy_for: &dyn Fn(u32) -> PolicyUnderTest,
    seed: u64,
    run_millis: u64,
    tenants: usize,
    threads: usize,
    admission_slots: Option<usize>,
    fault_plan_for: &dyn Fn(u32) -> Option<FaultPlan>,
) -> ShardedCaseReport {
    run_sharded_case_full(
        label,
        policy_for,
        seed,
        run_millis,
        tenants,
        threads,
        admission_slots,
        fault_plan_for,
        None,
        Vec::new(),
    )
}

/// [`run_sharded_case`] with the per-window shard step order permuted by a
/// seeded Fisher–Yates shuffle (`ShardedConfig::permute_seed`). Shards
/// share nothing between barriers, so every field of the report must match
/// the unpermuted run bit for bit — the dynamic face of the chrono-race
/// barrier-discipline claim the static rules and the interleaving model
/// check check structurally.
pub fn run_sharded_case_permuted(
    policy: PolicyUnderTest,
    seed: u64,
    run_millis: u64,
    tenants: usize,
    threads: usize,
    admission: bool,
    permute_seed: u64,
) -> ShardedCaseReport {
    let slots = admission.then(|| AdmissionConfig::default().total_slots);
    run_sharded_case_full(
        policy.name(),
        &|_| policy,
        seed,
        run_millis,
        tenants,
        threads,
        slots,
        &|_| None,
        Some(permute_seed),
        Vec::new(),
    )
}

/// The barrier-scheduled failure-domain arc of the tier-chaos shard cases:
/// every tenant's slow tier goes offline at 40 % of the run (evacuation
/// deadline at the halfway mark — a live drain window) and rejoins at
/// 70 %. Event times are absolute, so the arc lands on the same barriers
/// at every worker-thread count.
pub fn shard_tier_chaos_events(run_millis: u64) -> Vec<TierEvent> {
    let t = Nanos::from_millis(run_millis).as_nanos();
    vec![
        TierEvent {
            at: Nanos(t * 2 / 5),
            tier: TierId(1),
            kind: tiered_mem::TierEventKind::Offline {
                deadline: Nanos(t / 2),
            },
        },
        TierEvent {
            at: Nanos(t * 7 / 10),
            tier: TierId(1),
            kind: tiered_mem::TierEventKind::Online,
        },
    ]
}

/// The satellite determinism case of the failure-domain work: a mid-run
/// `TierOffline` (then rejoin) applied to every tenant at barriers via
/// [`tiering_policies::ShardedConfig::tier_events`], run at any worker
/// thread count. The committed chaos shard golden snapshots this
/// single-threaded; the thread-invariance suite replays it at 2 and 8
/// workers and must reproduce the table bit for bit.
pub fn run_sharded_tier_chaos_case(
    policy: PolicyUnderTest,
    seed: u64,
    run_millis: u64,
    threads: usize,
) -> ShardedCaseReport {
    run_sharded_case_full(
        policy.name(),
        &|_| policy,
        seed,
        run_millis,
        SHARD_GOLDEN_TENANTS,
        threads,
        Some(AdmissionConfig::default().total_slots),
        &|_| None,
        None,
        shard_tier_chaos_events(run_millis),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_sharded_case_full(
    label: &'static str,
    policy_for: &dyn Fn(u32) -> PolicyUnderTest,
    seed: u64,
    run_millis: u64,
    tenants: usize,
    threads: usize,
    admission_slots: Option<usize>,
    fault_plan_for: &dyn Fn(u32) -> Option<FaultPlan>,
    permute_seed: Option<u64>,
    tier_events: Vec<TierEvent>,
) -> ShardedCaseReport {
    const MAX_KEPT: usize = 8;
    let (shards, plan) = build_shards(policy_for, seed, tenants, run_millis, fault_plan_for);
    let mut cfg = ShardedConfig::new(Nanos::from_millis(run_millis));
    cfg.barrier_interval = Nanos::from_millis(SCAN_PERIOD_MS);
    cfg.threads = threads;
    cfg.permute_seed = permute_seed;
    cfg.tier_events = tier_events;
    cfg.admission = AdmissionConfig {
        enabled: admission_slots.is_some(),
        total_slots: admission_slots.unwrap_or_else(|| AdmissionConfig::default().total_slots),
    };
    let sim = ShardedSim::new(cfg, shards);

    // Per-shard oracle sweep at every barrier (the hook runs on the main
    // thread in tenant-id order, so `violations` needs no synchronisation),
    // plus the barrier-time admission audits for the post-run replay
    // through the canonical-grants oracle.
    let mut oracle = InvariantOracle::new();
    let mut violations: Vec<Violation> = Vec::new();
    let mut audits: Vec<BarrierAudit> = Vec::new();
    let result = sim.run_with_audit(
        |shard| {
            if violations.len() < MAX_KEPT {
                violations.extend(oracle.check(&shard.sys));
                if let Some(v) = check_slot_flow(shard) {
                    violations.push(v);
                }
                violations.truncate(MAX_KEPT);
            }
        },
        |audit| audits.push(audit.clone()),
    );

    for audit in &audits {
        if violations.len() < MAX_KEPT {
            check_admission_audit(audit, tenants, &mut violations);
        }
    }
    check_cross_shard(&result.shards, &plan, &mut violations);
    for s in &result.shards {
        if let Some(v) = check_slot_flow(s) {
            violations.push(v);
        }
    }
    violations.truncate(MAX_KEPT);

    let backpressure_rejects = result
        .shards
        .iter()
        .map(|s| s.sys.stats.failed_fast_migrations[3])
        .sum();
    ShardedCaseReport {
        policy: label,
        seed,
        tenants,
        threads,
        combined_digest: result.combined_digest(),
        tenant_digests: result.outcomes.iter().map(|o| o.digest).collect(),
        accesses: result.total_accesses(),
        backpressure_rejects,
        granted_slots: result.outcomes.iter().map(|o| o.granted_slots).collect(),
        slot_gini: result.slot_share_gini(),
        fmar_spread: result.fmar_spread(),
        tier_health_transitions: result
            .shards
            .iter()
            .map(|s| s.sys.stats.tier_health_transitions)
            .sum(),
        evacuated_pages: result
            .shards
            .iter()
            .map(|s| s.sys.stats.evacuated_pages)
            .sum(),
        violations,
    }
}

/// One tenant-storm fuzz case: 4–8 tenants with mixed policies (rotated
/// through [`ALL_POLICIES`] from a seed-derived offset), skewed weights, the
/// admission hook on, and a canonical fault plan (capacity shrink, copy
/// faults, degradation) attached to one seed-chosen tenant — cross-tenant
/// allocation pressure, concurrent promotion drains, and mid-barrier
/// capacity shrink in one schedule.
pub fn fuzz_one_tenant_storm(seed: u64, run_millis: u64) -> ShardedCaseReport {
    let mut rng = DetRng::split(seed, FAULT_STREAM);
    let tenants = 4 + rng.below(5) as usize; // 4..=8
    let threads = 1 + rng.below(4) as usize; // 1..=4
    let offset = rng.below(ALL_POLICIES.len() as u64) as usize;
    // At least one tenant always runs a Chrono mode: its two-phase
    // migrations hold in-flight slots across the copy window, so a tight
    // cap actually binds (baselines complete instantly and rarely queue).
    let chrono_tenant = rng.below(tenants as u64) as u32;
    let faulty_tenant = rng.below(tenants as u64) as u32;
    // A deliberately tight slot pool (right at the weighted-regime
    // boundary) so cross-tenant contention — and the admission-reject
    // path — actually gets exercised.
    let slots = 2 * tenants + rng.below(4) as usize;
    let horizon = Nanos::from_millis(run_millis);
    run_sharded_case_mixed(
        "storm-mixed",
        &move |id| {
            if id == chrono_tenant {
                PolicyUnderTest::ChronoDcsc
            } else {
                ALL_POLICIES[(offset + id as usize) % ALL_POLICIES.len()]
            }
        },
        seed,
        run_millis,
        tenants,
        threads,
        Some(slots),
        &move |id| {
            if id == faulty_tenant {
                Some(FaultPlan::canonical(seed ^ id as u64, horizon))
            } else {
                None
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy_fuzz::run_policy_case;

    #[test]
    fn single_tenant_sharded_run_reproduces_classic_digest() {
        // The compat path: one tenant, hook off ⇒ byte-identical to the
        // classic driver for a Chrono mode and a baseline.
        for p in [PolicyUnderTest::ChronoDcsc, PolicyUnderTest::Tpp] {
            let classic = run_policy_case(p, 0x5EED, 10);
            for threads in [1usize, 4] {
                let sharded = run_sharded_case(p, 0x5EED, 10, 1, threads, false);
                assert_eq!(
                    sharded.combined_digest, classic.digest,
                    "{} single-tenant sharded digest diverged from classic",
                    classic.policy
                );
                assert_eq!(sharded.accesses, classic.accesses);
                assert!(sharded.clean(), "violations: {:?}", sharded.violations);
            }
        }
    }

    #[test]
    fn multi_tenant_case_is_thread_invariant_and_clean() {
        let p = PolicyUnderTest::ChronoDcsc;
        let one = run_sharded_case(p, 0xABCD, 10, 4, 1, true);
        let eight = run_sharded_case(p, 0xABCD, 10, 4, 8, true);
        assert_eq!(one.combined_digest, eight.combined_digest);
        assert_eq!(one.tenant_digests, eight.tenant_digests);
        assert_eq!(one.granted_slots, eight.granted_slots);
        assert!(one.clean(), "violations: {:?}", one.violations);
        assert!(one.accesses > 0);
    }

    #[test]
    fn mid_run_tier_offline_is_thread_invariant_and_actually_evacuates() {
        // The failure-domain determinism satellite: the slow tier of every
        // tenant dies mid-run and rejoins, applied at barriers — 1-, 2-,
        // and 8-worker replays must produce the same tables bit for bit,
        // and the arc must genuinely fire (evacuations, health churn).
        let p = PolicyUnderTest::ChronoDcsc;
        let one = run_sharded_tier_chaos_case(p, 0xABCD, 10, 1);
        assert!(one.clean(), "violations: {:?}", one.violations);
        assert!(one.tier_health_transitions > 0, "no tier ever failed");
        assert!(one.evacuated_pages > 0, "offline window never evacuated");
        for threads in [2usize, 8] {
            let multi = run_sharded_tier_chaos_case(p, 0xABCD, 10, threads);
            assert_eq!(
                multi.combined_digest, one.combined_digest,
                "{threads}-thread chaos replay diverged"
            );
            assert_eq!(multi.tenant_digests, one.tenant_digests);
            assert_eq!(multi.granted_slots, one.granted_slots);
            assert_eq!(multi.tier_health_transitions, one.tier_health_transitions);
            assert_eq!(multi.evacuated_pages, one.evacuated_pages);
        }
        // The arc must also perturb the run relative to the fault-free case
        // — otherwise the golden snapshots nothing new.
        let clean = run_sharded_case(p, 0xABCD, 10, SHARD_GOLDEN_TENANTS, 1, true);
        assert_ne!(one.combined_digest, clean.combined_digest);
    }

    #[test]
    fn tenant_storm_case_is_deterministic_and_clean() {
        let a = fuzz_one_tenant_storm(0x5701, 10);
        let b = fuzz_one_tenant_storm(0x5701, 10);
        assert_eq!(a.combined_digest, b.combined_digest);
        assert_eq!(a.tenant_digests, b.tenant_digests);
        assert!(a.clean(), "violations: {:?}", a.violations);
    }

    #[test]
    fn admission_reject_path_fires_under_storm() {
        // Effectiveness self-test: across a handful of storm seeds the
        // backpressure-reject path must actually fire — otherwise the
        // admission hook (and the invariants above it) test nothing.
        let mut rejects = 0u64;
        for seed in 0..6u64 {
            rejects += fuzz_one_tenant_storm(0x5702 + seed, 10).backpressure_rejects;
        }
        assert!(
            rejects > 0,
            "admission hook never rejected a migration across storm seeds"
        );
    }

    #[test]
    fn permuted_step_order_reproduces_every_digest() {
        // The dynamic chrono-race property: a seeded per-window shuffle of
        // the shard step order (sequential and threaded) must leave the
        // whole report identical to the unpermuted run.
        let p = PolicyUnderTest::ChronoDcsc;
        let base = run_sharded_case(p, 0xABCD, 10, 4, 1, true);
        for permute in [0x0101u64, 0xDEAD_BEEF] {
            for threads in [1usize, 4] {
                let perm = run_sharded_case_permuted(p, 0xABCD, 10, 4, threads, true, permute);
                assert_eq!(
                    perm.combined_digest, base.combined_digest,
                    "permute {permute:#x} at {threads} threads: combined digest diverged"
                );
                assert_eq!(perm.tenant_digests, base.tenant_digests);
                assert_eq!(perm.granted_slots, base.granted_slots);
                assert!(perm.clean(), "violations: {:?}", perm.violations);
            }
        }
    }

    #[test]
    fn admission_grants_match_canonical_on_random_claims() {
        // 256-seed differential check of the two grant implementations:
        // `tiering_policies::admission_grants` (shipped) against
        // `tiering_analysis::canonical_grants` (model), over random claim
        // vectors spanning both regimes (weighted and scarce), empty claim
        // sets, zero weights, and zero slot pools.
        use tiering_policies::{admission_grants, SlotClaim};
        for seed in 0..256u64 {
            let mut rng = DetRng::split(0x6A_47, seed);
            let n = rng.below(9) as usize; // 0..=8 claimants
            let total = rng.below(33); // 0..=32 slots
            let claims: Vec<SlotClaim> = (0..n)
                .map(|_| SlotClaim {
                    weight: rng.below(9), // 0 behaves as 1
                    starvation: rng.below(6) as u32,
                })
                .collect();
            let model: Vec<RaceClaim> = claims
                .iter()
                .map(|c| RaceClaim {
                    weight: c.weight,
                    starvation: c.starvation,
                })
                .collect();
            assert_eq!(
                admission_grants(total, &claims),
                canonical_grants(total, &model),
                "seed {seed}: implementations disagree on {total} slots, {claims:?}"
            );
        }
    }

    #[test]
    fn canonical_grant_oracle_flags_a_tampered_audit() {
        // Effectiveness self-test: the N-version oracle must actually fire
        // on a decision that disagrees with the canonical computation.
        use tiering_policies::SlotClaim;
        let claims = vec![
            SlotClaim {
                weight: 2,
                starvation: 0,
            },
            SlotClaim {
                weight: 1,
                starvation: 3,
            },
        ];
        let honest = canonical_grants(
            8,
            &[
                RaceClaim {
                    weight: 2,
                    starvation: 0,
                },
                RaceClaim {
                    weight: 1,
                    starvation: 3,
                },
            ],
        );
        let mut grants = vec![0u64; 3];
        grants[0] = honest[0];
        grants[2] = honest[1];
        let mut audit = BarrierAudit {
            barrier: 7,
            first: false,
            total_slots: 8,
            active: vec![0, 2],
            claims,
            grants,
        };
        let mut out = Vec::new();
        check_admission_audit(&audit, 3, &mut out);
        assert!(out.is_empty(), "honest audit flagged: {out:?}");
        // Tamper: shift one slot between the two demanding tenants.
        audit.grants[0] += 1;
        audit.grants[2] -= 1;
        check_admission_audit(&audit, 3, &mut out);
        assert_eq!(out.len(), 1, "tampered audit not flagged");
        assert_eq!(out[0].invariant, "admission-grants-canonical");
    }

    #[test]
    fn weights_are_skewed_and_stable() {
        let a = tenant_weights(7, 16);
        let b = tenant_weights(7, 16);
        assert_eq!(a, b);
        assert!(a.iter().any(|&w| w != a[0]), "weights must be skewed");
        assert!(a.iter().all(|&w| (1..=8).contains(&w)));
    }
}
