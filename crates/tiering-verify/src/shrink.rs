//! Delta-debugging shrinker for failing op schedules.
//!
//! Classic ddmin over subsequences: repeatedly try deleting chunks of the
//! schedule, keeping any candidate that still fails, halving the chunk size
//! until single ops remain. The predicate re-runs the schedule from a fresh
//! system each time, so the result is a minimal *replayable* sequence —
//! removing any one remaining op makes the failure disappear (1-minimality,
//! up to the attempt budget).

/// Shrinks `ops` to a locally minimal subsequence for which `fails` still
/// returns true. `fails(&ops)` must be true on entry (callers check first);
/// if it is not, the input is returned unchanged.
///
/// The predicate is invoked at most `MAX_ATTEMPTS` times, bounding shrink
/// cost on expensive reproductions; the best-so-far sequence is returned
/// when the budget runs out.
pub fn shrink_ops<T, F>(ops: &[T], mut fails: F) -> Vec<T>
where
    T: Clone,
    F: FnMut(&[T]) -> bool,
{
    const MAX_ATTEMPTS: usize = 4096;
    let mut current: Vec<T> = ops.to_vec();
    if current.is_empty() || !fails(&current) {
        return current;
    }
    let mut attempts = 0usize;
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() && attempts < MAX_ATTEMPTS {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            attempts += 1;
            if !candidate.is_empty() && fails(&candidate) {
                current = candidate;
                reduced = true;
                // Same start now addresses the next chunk of the shorter list.
            } else {
                start = end;
            }
        }
        if attempts >= MAX_ATTEMPTS {
            break;
        }
        if chunk == 1 {
            if !reduced {
                break; // 1-minimal: no single op can be removed.
            }
            // Another single-op pass may unlock more removals.
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_single_culprit() {
        let ops: Vec<u32> = (0..1000).collect();
        let shrunk = shrink_ops(&ops, |c| c.contains(&777));
        assert_eq!(shrunk, vec![777]);
    }

    #[test]
    fn shrinks_to_interacting_pair() {
        let ops: Vec<u32> = (0..512).collect();
        // Fails only when 3 appears before 400 — an order-dependent pair.
        let shrunk = shrink_ops(&ops, |c| {
            let a = c.iter().position(|&x| x == 3);
            let b = c.iter().position(|&x| x == 400);
            matches!((a, b), (Some(i), Some(j)) if i < j)
        });
        assert_eq!(shrunk, vec![3, 400]);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let ops = vec![1, 2, 3];
        assert_eq!(shrink_ops(&ops, |_| false), vec![1, 2, 3]);
    }

    #[test]
    fn preserves_order() {
        let ops: Vec<u32> = (0..100).rev().collect();
        let shrunk = shrink_ops(&ops, |c| c.iter().filter(|&&x| x % 10 == 0).count() >= 3);
        assert_eq!(shrunk.len(), 3);
        let mut sorted = shrunk.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(shrunk, sorted, "relative order must be preserved");
    }
}
