//! A Graph500-style graph-search workload (Section 5.2).
//!
//! Builds a scale-free graph with deterministic, hash-generated adjacency —
//! hub vertices (a small fraction of vertex ranks) attract a large share of
//! edges, as in Graph500's Kronecker generator — and drives BFS or SSSP
//! kernels over it. The memory layout mirrors a CSR representation:
//!
//! ```text
//! [ vertex offsets | edge array | visited/parent/dist array ]
//! ```
//!
//! Graph search touches the offset page of each frontier vertex, streams its
//! edge-list pages, and checks/writes the visited entry of every neighbour.
//! Because degrees follow a continuous power law over ids, the offset/state
//! pages of low ids are touched ∝ their vertices' degrees — the warm-to-hot
//! gradient with "mild access frequency difference" that the paper
//! highlights as hard for coarse-grained measurement to classify.

use std::collections::VecDeque;

use sim_clock::{DetRng, Nanos};
use tiered_mem::Vpn;

use crate::{AccessReq, Workload};

/// Entries (8-byte words) per 4 KiB page.
const WORDS_PER_PAGE: u64 = 512;
/// CPU work per traversed edge.
const EDGE_THINK: Nanos = Nanos(6);
/// Power-law exponent of the degree sequence: `deg(v) ∝ (v+1)^-SKEW`, the
/// continuous gradient Kronecker generators produce (low ids = high degree).
/// The paper leans on exactly this: "hot regions following the various edge
/// degree distribution, of which the hotter items and the colder items have
/// mild access frequency difference".
const DEGREE_SKEW: f64 = 0.6;

/// Which Graph500 kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKernel {
    /// Breadth-first search (kernel 2).
    Bfs,
    /// Single-source shortest paths (kernel 3); one extra distance write per
    /// relaxed edge.
    Sssp,
}

/// Graph500 workload configuration.
#[derive(Debug, Clone)]
pub struct Graph500Config {
    /// Number of vertices.
    pub vertices: u32,
    /// Average degree (Graph500's edgefactor, default 16).
    pub edge_factor: u32,
    /// Kernel to run.
    pub kernel: GraphKernel,
    /// Number of search roots (Graph500 runs 64 BFS iterations).
    pub roots: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Graph500Config {
    /// Sizes a graph so its CSR footprint is roughly `pages` base pages.
    ///
    /// Footprint ≈ (offsets V + edges E + state 2V) words with E = ef·V.
    pub fn sized_to_pages(pages: u32, kernel: GraphKernel, seed: u64) -> Graph500Config {
        let ef = 16u32;
        let words = pages as u64 * WORDS_PER_PAGE;
        let vertices = (words / (3 + ef as u64)).max(64) as u32;
        Graph500Config {
            vertices,
            edge_factor: ef,
            kernel,
            roots: 16,
            seed,
        }
    }
}

/// The instantiated workload: graph structure plus kernel driver state.
pub struct Graph500Workload {
    cfg: Graph500Config,
    /// CSR prefix offsets (edge-array word index of each vertex's list).
    prefix: Vec<u64>,
    /// Memory regions, in pages.
    offsets_pages: u32,
    edges_pages: u32,
    state_pages: u32,
    /// Kernel state.
    visited: Vec<u64>,
    frontier: VecDeque<u32>,
    next_frontier: Vec<u32>,
    current: Option<(u32, u32)>, // (vertex, next edge index)
    /// Direction-optimizing state: when `Some(cursor)`, the traversal is in
    /// a bottom-up level scanning unvisited vertices from `cursor`.
    bottom_up: Option<u32>,
    /// Vertices found during the current bottom-up level.
    bottom_up_found: u32,
    roots_done: u32,
    rng: DetRng,
    buffer: VecDeque<AccessReq>,
    finished: bool,
}

impl Graph500Workload {
    /// Builds the graph (degree sequence and prefix sums) and prepares the
    /// first root.
    pub fn new(cfg: Graph500Config) -> Graph500Workload {
        let v = cfg.vertices as u64;
        let e_target = v * cfg.edge_factor as u64;
        // Continuous power-law degree sequence: deg(id) ∝ (id+1)^-SKEW,
        // scaled so the total edge count hits edge_factor × V. Low ids are
        // the high-degree end, as Kronecker generators produce, giving the
        // CSR's offset/state/edge regions a smooth page-level hotness
        // gradient rather than a binary hub/cold split.
        let norm: f64 = (0..cfg.vertices)
            .map(|id| ((id + 1) as f64).powf(-DEGREE_SKEW))
            .sum();
        let scale = e_target as f64 / norm;
        let mut prefix = Vec::with_capacity(cfg.vertices as usize + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for id in 0..cfg.vertices {
            let deg = (scale * ((id + 1) as f64).powf(-DEGREE_SKEW)).round() as u64;
            acc += deg.max(1);
            prefix.push(acc);
        }
        let edges = acc;

        let offsets_pages = (v + 1).div_ceil(WORDS_PER_PAGE) as u32;
        let edges_pages = edges.div_ceil(WORDS_PER_PAGE) as u32;
        let state_pages = (2 * v).div_ceil(WORDS_PER_PAGE) as u32;

        let words = cfg.vertices as usize;
        let mut w = Graph500Workload {
            rng: DetRng::seed(cfg.seed),
            cfg,
            prefix,
            offsets_pages,
            edges_pages,
            state_pages,
            visited: vec![0; words.div_ceil(64)],
            frontier: VecDeque::new(),
            next_frontier: Vec::new(),
            current: None,
            bottom_up: None,
            bottom_up_found: 0,
            roots_done: 0,
            buffer: VecDeque::new(),
            finished: false,
        };
        w.start_root();
        w
    }

    /// Deterministic adjacency: the `i`-th neighbour of `v`, drawn with
    /// probability proportional to the target's degree (preferential
    /// attachment) by picking a uniformly random edge-array word and taking
    /// its owning vertex — a binary search over the prefix sums.
    fn edge_target(&self, v: u32, i: u64) -> u32 {
        let mut x = (v as u64) << 32 | i;
        // SplitMix64 finalizer as a cheap, high-quality hash.
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^= x >> 31;
        let edges = *self.prefix.last().expect("prefix is non-empty");
        let word = x % edges;
        // First vertex whose list extends past `word`.
        match self.prefix.binary_search(&word) {
            Ok(idx) => idx as u32,
            Err(idx) => (idx - 1) as u32,
        }
    }

    // ----- Page layout -----------------------------------------------------

    fn offset_page(&self, v: u32) -> Vpn {
        Vpn((v as u64 / WORDS_PER_PAGE) as u32)
    }

    fn edge_page(&self, word: u64) -> Vpn {
        Vpn(self.offsets_pages + (word / WORDS_PER_PAGE) as u32)
    }

    fn state_page(&self, v: u32) -> Vpn {
        Vpn(self.offsets_pages + self.edges_pages + (v as u64 * 2 / WORDS_PER_PAGE) as u32)
    }

    // ----- Kernel driver ---------------------------------------------------

    fn start_root(&mut self) {
        self.visited.iter_mut().for_each(|w| *w = 0);
        let root = self.rng.below(self.cfg.vertices as u64) as u32;
        self.mark_visited(root);
        self.frontier.clear();
        self.next_frontier.clear();
        self.frontier.push_back(root);
        self.current = None;
        self.bottom_up = None;
        self.bottom_up_found = 0;
        // Touch the root's state entry.
        self.buffer.push_back(AccessReq {
            vpn: self.state_page(root),
            write: true,
            think: EDGE_THINK,
        });
    }

    fn mark_visited(&mut self, v: u32) -> bool {
        let (w, b) = (v as usize / 64, v as usize % 64);
        let fresh = self.visited[w] & (1 << b) == 0;
        self.visited[w] |= 1 << b;
        fresh
    }

    /// One bottom-up step: examine up to `batch` vertices from the cursor,
    /// probing unvisited vertices' first neighbours for a visited parent —
    /// the direction-optimizing phase of the Graph500 reference BFS. Each
    /// level re-reads the *head* of every unvisited vertex's edge list plus
    /// its state entry, which is what gives the CSR its recurring (warm)
    /// traffic on top of the one-pass top-down streams.
    fn bottom_up_step(&mut self, cursor: u32) {
        const BATCH: u32 = 64;
        const PROBES: u64 = 4;
        let v_count = self.cfg.vertices;
        let end = (cursor + BATCH).min(v_count);
        for v in cursor..end {
            let (w, b) = (v as usize / 64, v as usize % 64);
            if self.visited[w] & (1 << b) != 0 {
                continue;
            }
            // Read v's state (visited check) and its edge-list head.
            self.buffer.push_back(AccessReq {
                vpn: self.state_page(v),
                write: false,
                think: EDGE_THINK,
            });
            self.buffer.push_back(AccessReq {
                vpn: self.edge_page(self.prefix[v as usize]),
                write: false,
                think: Nanos::ZERO,
            });
            let deg = self.prefix[v as usize + 1] - self.prefix[v as usize];
            for i in 0..deg.min(PROBES) {
                let parent = self.edge_target(v, i);
                let (pw, pb) = (parent as usize / 64, parent as usize % 64);
                if self.visited[pw] & (1 << pb) != 0 {
                    self.mark_visited(v);
                    self.bottom_up_found += 1;
                    self.buffer.push_back(AccessReq {
                        vpn: self.state_page(v),
                        write: true,
                        think: Nanos::ZERO,
                    });
                    break;
                }
            }
        }
        if end >= v_count {
            // Level complete: continue bottom-up while it makes progress.
            if self.bottom_up_found > 0 {
                self.bottom_up = Some(0);
                self.bottom_up_found = 0;
            } else {
                self.bottom_up = None;
                self.frontier.clear();
                self.next_frontier.clear();
            }
        } else {
            self.bottom_up = Some(end);
        }
    }

    /// Advances the kernel until at least one access is buffered or the
    /// workload finishes.
    fn refill(&mut self) {
        while self.buffer.is_empty() && !self.finished {
            if let Some(cursor) = self.bottom_up {
                self.bottom_up_step(cursor);
                continue;
            }
            // Pick the vertex being expanded, or pop the next frontier entry.
            let (u, i) = match self.current {
                Some(cur) => cur,
                None => match self.frontier.pop_front() {
                    Some(u) => {
                        // Reading u's offsets touches the offset array.
                        self.buffer.push_back(AccessReq {
                            vpn: self.offset_page(u),
                            write: false,
                            think: EDGE_THINK,
                        });
                        (u, 0)
                    }
                    None => {
                        // Level done: switch direction when the frontier has
                        // grown past the direction-optimizing threshold,
                        // otherwise swap frontiers or finish the root.
                        if self.next_frontier.len() as u32 > self.cfg.vertices / 16 {
                            self.next_frontier.clear();
                            self.bottom_up = Some(0);
                            self.bottom_up_found = 0;
                            continue;
                        }
                        if self.next_frontier.is_empty() {
                            self.roots_done += 1;
                            if self.roots_done >= self.cfg.roots {
                                self.finished = true;
                            } else {
                                self.start_root();
                            }
                        } else {
                            self.frontier.extend(self.next_frontier.drain(..));
                        }
                        continue;
                    }
                },
            };

            let deg = self.prefix[u as usize + 1] - self.prefix[u as usize];
            if (i as u64) >= deg {
                self.current = None;
                continue;
            }
            self.current = Some((u, i + 1));

            let word = self.prefix[u as usize] + i as u64;
            let target = self.edge_target(u, i as u64);
            // Stream the edge entry.
            self.buffer.push_back(AccessReq {
                vpn: self.edge_page(word),
                write: false,
                think: EDGE_THINK,
            });
            // Check the neighbour's visited/dist entry.
            let fresh = self.mark_visited(target);
            let state_write = fresh || self.cfg.kernel == GraphKernel::Sssp;
            self.buffer.push_back(AccessReq {
                vpn: self.state_page(target),
                write: state_write,
                think: Nanos::ZERO,
            });
            if fresh {
                self.next_frontier.push(target);
            }
        }
    }

    /// Total CSR pages of the graph.
    pub fn csr_pages(&self) -> u32 {
        self.offsets_pages + self.edges_pages + self.state_pages
    }

    /// Roots completed so far.
    pub fn roots_done(&self) -> u32 {
        self.roots_done
    }
}

impl Workload for Graph500Workload {
    fn next_access(&mut self) -> Option<AccessReq> {
        if self.buffer.is_empty() {
            self.refill();
        }
        self.buffer.pop_front()
    }

    fn address_space_pages(&self) -> u32 {
        self.csr_pages()
    }

    fn label(&self) -> String {
        format!(
            "graph500({:?},V={},ef={})",
            self.cfg.kernel, self.cfg.vertices, self.cfg.edge_factor
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(kernel: GraphKernel) -> Graph500Config {
        Graph500Config {
            vertices: 2000,
            edge_factor: 8,
            kernel,
            roots: 2,
            seed: 11,
        }
    }

    #[test]
    fn workload_terminates_after_roots() {
        let mut w = Graph500Workload::new(small_cfg(GraphKernel::Bfs));
        let mut count = 0u64;
        while w.next_access().is_some() {
            count += 1;
            assert!(count < 10_000_000, "runaway BFS");
        }
        assert_eq!(w.roots_done(), 2);
        // A BFS over 2000 vertices with ef=8 must traverse thousands of edges.
        assert!(count > 5_000, "only {} accesses", count);
    }

    #[test]
    fn accesses_stay_within_address_space() {
        let mut w = Graph500Workload::new(small_cfg(GraphKernel::Bfs));
        let pages = w.address_space_pages();
        for _ in 0..50_000 {
            match w.next_access() {
                Some(req) => assert!(req.vpn.0 < pages, "{:?} out of {} pages", req.vpn, pages),
                None => break,
            }
        }
    }

    #[test]
    fn sssp_writes_more_than_bfs() {
        let count_writes = |kernel| {
            let mut w = Graph500Workload::new(small_cfg(kernel));
            let mut writes = 0u64;
            let mut total = 0u64;
            while let Some(r) = w.next_access() {
                total += 1;
                writes += r.write as u64;
                if total > 200_000 {
                    break;
                }
            }
            writes as f64 / total as f64
        };
        assert!(count_writes(GraphKernel::Sssp) > count_writes(GraphKernel::Bfs));
    }

    #[test]
    fn edge_pages_are_hot_skewed() {
        // Hub edge pages should see far more traffic than median edge pages.
        let mut w = Graph500Workload::new(small_cfg(GraphKernel::Bfs));
        let mut counts = std::collections::HashMap::new();
        while let Some(r) = w.next_access() {
            *counts.entry(r.vpn.0).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.into_values().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top = freqs[0];
        let median = freqs[freqs.len() / 2];
        assert!(
            top > media_floor(median),
            "top page {} not much hotter than median {}",
            top,
            median
        );
    }

    fn media_floor(m: u64) -> u64 {
        (m * 3).max(10)
    }

    #[test]
    fn sized_to_pages_is_close() {
        let cfg = Graph500Config::sized_to_pages(4096, GraphKernel::Bfs, 1);
        let w = Graph500Workload::new(cfg);
        let pages = w.csr_pages();
        assert!(
            (pages as i64 - 4096).unsigned_abs() < 1024,
            "sized to {} pages",
            pages
        );
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Graph500Workload::new(small_cfg(GraphKernel::Bfs));
        let mut b = Graph500Workload::new(small_cfg(GraphKernel::Bfs));
        for _ in 0..1000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }
}
