//! An in-memory key-value store workload (Memcached / Redis, Section 5.3).
//!
//! Models the memory behaviour that matters for tiering: a hash-bucket array
//! region, an item-data region (and, for Redis, a separate object-metadata
//! region mirroring its `robj`/`sds` split), driven by memtier-style
//! Gaussian-popularity SET/GET operations. Items are initialized
//! sequentially, as the paper does to equalize the starting page placement.

use sim_clock::{DetRng, Nanos, Zipf};
use tiered_mem::Vpn;

use crate::{AccessReq, Workload};

/// Bytes per page.
const PAGE_BYTES: u64 = 4096;
/// CPU work per operation (hashing, protocol handling); memtier keeps deep
/// pipelines per connection, so per-op CPU overlaps with memory time.
const OP_THINK: Nanos = Nanos(60);

/// Which store to model; they differ in per-item overhead and layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvFlavor {
    /// Slab-allocated items; key+value+header contiguous.
    Memcached,
    /// Separate object header (`robj`) region and value (`sds`) region: each
    /// operation touches one extra metadata page.
    Redis,
}

/// KV workload configuration.
/// Key-popularity distributions supported by memtier-style load generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KvPopularity {
    /// Gaussian over the key space (the paper's configuration); σ as a
    /// fraction of the key space.
    Gaussian {
        /// Standard deviation as a fraction of the key space.
        sigma_frac: f64,
    },
    /// Zipf-ranked keys, scattered over the key space by a hash (memtier's
    /// `--key-pattern` zipfian analogue).
    Zipf {
        /// Zipf exponent (typical YCSB-style skew: 0.99).
        theta: f64,
    },
}

#[derive(Debug, Clone)]
/// KV workload configuration.
pub struct KvStoreConfig {
    /// Number of items in the store.
    pub items: u32,
    /// Value size in bytes (the paper's 160 GB / 500 M items ≈ 320 B/item).
    pub value_bytes: u32,
    /// Store flavour.
    pub flavor: KvFlavor,
    /// SET fraction (1:10 Set/Get → 1/11; 1:1 → 0.5).
    pub set_ratio: f64,
    /// Key popularity distribution.
    pub popularity: KvPopularity,
    /// Slab-allocator address-space spread: the data region's virtual span
    /// is `spread x` its dense size, with gaps between used pages. Real
    /// allocators scatter items this way, and it is what makes huge-page
    /// systems *bloat* (Memtis's 145 % average bloat rate in Section 5.3): a
    /// 2 MiB mapping unit in the hot region carries `1/spread` useful pages.
    pub layout_spread: f64,
    /// RNG seed.
    pub seed: u64,
    /// Operations to issue after initialization; `u64::MAX` = unbounded.
    pub total_ops: u64,
}

impl KvStoreConfig {
    /// A store sized to roughly `pages` base pages of data.
    pub fn sized_to_pages(
        pages: u32,
        flavor: KvFlavor,
        set_ratio: f64,
        seed: u64,
    ) -> KvStoreConfig {
        let value_bytes = 320u32;
        let item_bytes = value_bytes + flavor_overhead(flavor);
        let items_per_page = (PAGE_BYTES / item_bytes as u64).max(1);
        // Reserve ~15 % of pages for buckets/metadata, and account for the
        // slab spread so the *virtual* footprint lands near `pages`.
        let spread = 1.5f64;
        let data_pages = ((pages as u64 * 85) / 100) as f64 / spread;
        let data_pages = data_pages as u64;
        KvStoreConfig {
            items: (data_pages * items_per_page).max(64) as u32,
            value_bytes,
            flavor,
            set_ratio,
            popularity: KvPopularity::Gaussian { sigma_frac: 0.15 },
            layout_spread: 1.5,
            seed,
            total_ops: u64::MAX,
        }
    }

    /// Switches the key popularity to a Zipf ranking.
    pub fn with_zipf(mut self, theta: f64) -> KvStoreConfig {
        self.popularity = KvPopularity::Zipf { theta };
        self
    }
}

fn flavor_overhead(flavor: KvFlavor) -> u32 {
    match flavor {
        KvFlavor::Memcached => 56,
        KvFlavor::Redis => 32, // header lives in the separate robj region
    }
}

/// A running KV-store process.
pub struct KvStoreWorkload {
    cfg: KvStoreConfig,
    rng: DetRng,
    items_per_page: u32,
    bucket_pages: u32,
    meta_pages: u32,
    data_pages: u32,
    zipf: Option<Zipf>,
    init_cursor: u32,
    issued_ops: u64,
    pending: Option<AccessReq>,
    pending2: Option<AccessReq>,
}

impl KvStoreWorkload {
    /// Instantiates the store; the first `items` operations are the
    /// sequential initialization pass.
    pub fn new(cfg: KvStoreConfig) -> KvStoreWorkload {
        let item_bytes = cfg.value_bytes + flavor_overhead(cfg.flavor);
        let items_per_page = (PAGE_BYTES / item_bytes as u64).max(1) as u32;
        let data_pages = cfg.items.div_ceil(items_per_page);
        // One 8-byte bucket per item, 512 buckets per page.
        let bucket_pages = cfg.items.div_ceil(512).max(1);
        // Redis: one 16-byte robj per item, 256 per page.
        let meta_pages = match cfg.flavor {
            KvFlavor::Memcached => 0,
            KvFlavor::Redis => cfg.items.div_ceil(256).max(1),
        };
        let zipf = match cfg.popularity {
            KvPopularity::Zipf { theta } => Some(Zipf::new(cfg.items as u64, theta)),
            KvPopularity::Gaussian { .. } => None,
        };
        KvStoreWorkload {
            rng: DetRng::seed(cfg.seed),
            cfg,
            items_per_page,
            bucket_pages,
            meta_pages,
            data_pages,
            zipf,
            init_cursor: 0,
            issued_ops: 0,
            pending: None,
            pending2: None,
        }
    }

    fn bucket_page(&self, item: u32) -> Vpn {
        // Bucket index is a hash of the key, scattering popularity.
        let h = (item as u64).wrapping_mul(0x9E3779B97F4A7C15);
        Vpn((h % self.bucket_pages as u64) as u32)
    }

    fn meta_page(&self, item: u32) -> Vpn {
        Vpn(self.bucket_pages + item / 256)
    }

    fn data_page(&self, item: u32) -> Vpn {
        // Dense data-page index, spread over the slab region: injective for
        // spread >= 1, preserving locality while leaving allocator gaps.
        let dense = item / self.items_per_page;
        let spread = (dense as f64 * self.cfg.layout_spread) as u32;
        Vpn(self.bucket_pages + self.meta_pages + spread)
    }

    /// Samples an item id according to the configured popularity.
    fn sample_item(&mut self) -> u32 {
        match self.cfg.popularity {
            KvPopularity::Gaussian { sigma_frac } => {
                let n = self.cfg.items as f64;
                let sigma = n * sigma_frac;
                loop {
                    let x = self.rng.normal(n / 2.0, sigma);
                    if x >= 0.0 && x < n {
                        return x as u32;
                    }
                }
            }
            KvPopularity::Zipf { .. } => {
                let z = self.zipf.as_ref().expect("zipf sampler built at new()");
                let rank = z.sample(&mut self.rng) as u32;
                // Scatter ranks over item ids so the hot set isn't one page.
                let h = (rank as u64).wrapping_mul(0x9E3779B97F4A7C15);
                (h % self.cfg.items as u64) as u32
            }
        }
    }

    /// Ground truth for classification experiments: whether an item's data
    /// page lies within ±1σ of the Gaussian popularity centre (always false
    /// for Zipf popularity, whose hot set is hash-scattered).
    pub fn in_hot_center(&self, vpn: Vpn) -> bool {
        let KvPopularity::Gaussian { sigma_frac } = self.cfg.popularity else {
            return false;
        };
        let n = self.cfg.items as f64;
        let lo_item = (n / 2.0 - n * sigma_frac) as u32;
        let hi_item = (n / 2.0 + n * sigma_frac) as u32;
        let lo = self.data_page(lo_item);
        let hi = self.data_page(hi_item);
        (lo.0..=hi.0).contains(&vpn.0)
    }
}

impl Workload for KvStoreWorkload {
    fn next_access(&mut self) -> Option<AccessReq> {
        if let Some(req) = self.pending.take() {
            return Some(req);
        }
        if let Some(req) = self.pending2.take() {
            self.pending = None;
            return Some(req);
        }

        // Initialization pass: write every item once, in order.
        if self.init_cursor < self.cfg.items {
            let item = self.init_cursor;
            self.init_cursor += 1;
            self.pending = Some(AccessReq {
                vpn: self.data_page(item),
                write: true,
                think: Nanos::ZERO,
            });
            if self.cfg.flavor == KvFlavor::Redis {
                self.pending2 = self.pending.take();
                self.pending = Some(AccessReq {
                    vpn: self.meta_page(item),
                    write: true,
                    think: Nanos::ZERO,
                });
            }
            return Some(AccessReq {
                vpn: self.bucket_page(item),
                write: true,
                think: OP_THINK,
            });
        }

        if self.issued_ops >= self.cfg.total_ops {
            return None;
        }
        self.issued_ops += 1;

        let item = self.sample_item();
        let is_set = self.rng.chance(self.cfg.set_ratio);
        // Op = bucket lookup (read) → [robj read/write] → item read/write.
        self.pending = Some(AccessReq {
            vpn: self.data_page(item),
            write: is_set,
            think: Nanos::ZERO,
        });
        if self.cfg.flavor == KvFlavor::Redis {
            self.pending2 = self.pending.take();
            self.pending = Some(AccessReq {
                vpn: self.meta_page(item),
                write: is_set,
                think: Nanos::ZERO,
            });
        }
        Some(AccessReq {
            vpn: self.bucket_page(item),
            write: false,
            think: OP_THINK,
        })
    }

    fn address_space_pages(&self) -> u32 {
        let spread_pages = (self.data_pages as f64 * self.cfg.layout_spread).ceil() as u32 + 1;
        self.bucket_pages + self.meta_pages + spread_pages
    }

    fn label(&self) -> String {
        format!(
            "{:?}(items={},set={:.2})",
            self.cfg.flavor, self.cfg.items, self.cfg.set_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(flavor: KvFlavor) -> KvStoreConfig {
        KvStoreConfig {
            items: 10_000,
            value_bytes: 320,
            flavor,
            set_ratio: 1.0 / 11.0,
            popularity: KvPopularity::Gaussian { sigma_frac: 0.15 },
            layout_spread: 1.0,
            seed: 5,
            total_ops: 1000,
        }
    }

    #[test]
    fn initialization_touches_every_data_page() {
        let mut w = KvStoreWorkload::new(cfg(KvFlavor::Memcached));
        let mut touched = std::collections::HashSet::new();
        // Init = items × 2 accesses (bucket + data).
        for _ in 0..(10_000 * 2) {
            let r = w.next_access().unwrap();
            assert!(r.write, "init accesses are writes");
            touched.insert(r.vpn.0);
        }
        let data_pages = w.address_space_pages() - w.bucket_pages;
        assert!(touched.len() as u32 >= data_pages);
    }

    #[test]
    fn redis_touches_extra_metadata_page() {
        let a = {
            let mut w = KvStoreWorkload::new(cfg(KvFlavor::Memcached));
            let mut n = 0u64;
            while w.next_access().is_some() {
                n += 1;
            }
            n
        };
        let b = {
            let mut w = KvStoreWorkload::new(cfg(KvFlavor::Redis));
            let mut n = 0u64;
            while w.next_access().is_some() {
                n += 1;
            }
            n
        };
        // Redis issues 3 accesses per op/init vs Memcached's 2.
        assert!(b > a, "redis {} <= memcached {}", b, a);
    }

    #[test]
    fn set_ratio_reflected_in_data_writes() {
        let mut c = cfg(KvFlavor::Memcached);
        c.total_ops = 50_000;
        let mut w = KvStoreWorkload::new(c);
        // Drain the init pass.
        for _ in 0..(10_000 * 2) {
            w.next_access().unwrap();
        }
        let mut data_writes = 0u64;
        let mut data_accesses = 0u64;
        while let Some(r) = w.next_access() {
            if r.vpn.0 >= w.bucket_pages {
                data_accesses += 1;
                data_writes += r.write as u64;
            }
        }
        let frac = data_writes as f64 / data_accesses as f64;
        assert!((frac - 1.0 / 11.0).abs() < 0.02, "set fraction {}", frac);
    }

    #[test]
    fn popularity_is_centered() {
        let mut c = cfg(KvFlavor::Memcached);
        c.total_ops = 20_000;
        let mut w = KvStoreWorkload::new(c);
        for _ in 0..(10_000 * 2) {
            w.next_access().unwrap();
        }
        let mut hot = 0u64;
        let mut data = 0u64;
        while let Some(r) = w.next_access() {
            if r.vpn.0 >= w.bucket_pages {
                data += 1;
                hot += w.in_hot_center(r.vpn) as u64;
            }
        }
        let frac = hot as f64 / data as f64;
        assert!(frac > 0.6, "hot-center fraction {}", frac);
    }

    #[test]
    fn sized_to_pages_is_close() {
        let c = KvStoreConfig::sized_to_pages(4096, KvFlavor::Memcached, 0.5, 1);
        let w = KvStoreWorkload::new(c);
        let pages = w.address_space_pages();
        assert!(
            (pages as i64 - 4096).unsigned_abs() < 800,
            "sized to {}",
            pages
        );
    }

    #[test]
    fn deterministic_stream() {
        let mut a = KvStoreWorkload::new(cfg(KvFlavor::Redis));
        let mut b = KvStoreWorkload::new(cfg(KvFlavor::Redis));
        for _ in 0..5000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn slab_spread_leaves_allocator_gaps() {
        let mut c = cfg(KvFlavor::Memcached);
        c.layout_spread = 1.5;
        let mut w = KvStoreWorkload::new(c);
        let mut touched = std::collections::HashSet::new();
        for _ in 0..(10_000 * 2) {
            touched.insert(w.next_access().unwrap().vpn.0);
        }
        // The data region spans ~1.5x its dense size but only ~2/3 of its
        // pages are ever mapped: the huge-page bloat substrate.
        let span = w.address_space_pages() - w.bucket_pages;
        let data_touched = touched.iter().filter(|v| **v >= w.bucket_pages).count() as u32;
        let density = data_touched as f64 / span as f64;
        assert!(density < 0.75, "density {:.2}", density);
        assert!(density > 0.55, "density {:.2}", density);
    }

    #[test]
    fn zipf_popularity_is_skewed_and_scattered() {
        let mut c = cfg(KvFlavor::Memcached).with_zipf(0.99);
        c.total_ops = 30_000;
        let mut w = KvStoreWorkload::new(c);
        for _ in 0..(10_000 * 2) {
            w.next_access().unwrap(); // drain init
        }
        let mut counts = std::collections::HashMap::new();
        while let Some(r) = w.next_access() {
            if r.vpn.0 >= w.bucket_pages {
                *counts.entry(r.vpn.0).or_insert(0u32) += 1;
            }
        }
        let mut freqs: Vec<u32> = counts.into_values().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Zipf page traffic is heavily skewed: top page >> median page.
        assert!(
            freqs[0] > freqs[freqs.len() / 2] * 3,
            "top {} vs median {}",
            freqs[0],
            freqs[freqs.len() / 2]
        );
        // And the hot-centre ground truth does not apply to Zipf.
        assert!(!w.in_hot_center(tiered_mem::Vpn(w.bucket_pages + 10)));
    }
}
