#![warn(missing_docs)]
//! Workload generators for the Chrono reproduction.
//!
//! Each generator models one of the paper's benchmarks as a stream of page
//! accesses with think time:
//!
//! - [`pmbench`]: the paging microbenchmark used throughout Section 5.1 —
//!   Gaussian (`normal_ih`) access patterns with stride, configurable
//!   read/write ratio, and the per-process `delay` knob used by the Fig 9
//!   multi-tenant experiment.
//! - [`graph500`]: a scale-free graph with BFS/SSSP drivers (Section 5.2),
//!   producing the hub-skewed page accesses of graph search.
//! - [`kvstore`]: an in-memory key-value store in the style of Memcached and
//!   Redis, driven by a memtier-like Gaussian key popularity (Section 5.3).
//! - [`pattern`]: the underlying reusable address distributions.
//!
//! Generators implement [`Workload`], yielding one [`AccessReq`] at a time so
//! the simulation driver never allocates on the access path.

pub mod graph500;
pub mod kvstore;
pub mod pattern;
pub mod phased;
pub mod pmbench;
pub mod trace;

use sim_clock::Nanos;
use tiered_mem::Vpn;

/// One memory access request emitted by a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessReq {
    /// Target page.
    pub vpn: Vpn,
    /// Whether this is a store.
    pub write: bool,
    /// CPU think time preceding the access (pmbench's `delay`, graph compute).
    pub think: Nanos,
}

/// A per-process stream of memory accesses.
///
/// `Send` is a supertrait so tenant shards (workload + system + policy) can
/// move across the worker threads of a sharded run; workload generators are
/// plain data over `DetRng`, so this costs implementors nothing.
pub trait Workload: Send {
    /// Produces the next access, or `None` when the process has finished its
    /// work (finite workloads like Graph500 runs).
    fn next_access(&mut self) -> Option<AccessReq>;

    /// Number of base pages this workload's address space must cover.
    fn address_space_pages(&self) -> u32;

    /// Short human-readable label for reports.
    fn label(&self) -> String;
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn next_access(&mut self) -> Option<AccessReq> {
        (**self).next_access()
    }
    fn address_space_pages(&self) -> u32 {
        (**self).address_space_pages()
    }
    fn label(&self) -> String {
        (**self).label()
    }
}

pub use graph500::{Graph500Config, Graph500Workload, GraphKernel};
pub use kvstore::{KvFlavor, KvPopularity, KvStoreConfig, KvStoreWorkload};
pub use pattern::{AccessPattern, GaussianPattern, HotsetPattern, UniformPattern, ZipfPattern};
pub use phased::PhasedWorkload;
pub use pmbench::{PmbenchConfig, PmbenchWorkload};
pub use trace::{Trace, TraceRecord, TraceWorkload};
