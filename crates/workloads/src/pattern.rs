//! Reusable page-address distributions.

use sim_clock::{DetRng, Zipf};
use tiered_mem::Vpn;

/// A distribution over page addresses within a working set.
pub trait AccessPattern {
    /// Samples the next page to touch.
    fn sample(&mut self, rng: &mut DetRng) -> Vpn;

    /// Number of base pages the pattern can address.
    fn pages(&self) -> u32;
}

/// Uniformly random pages — pmbench's `uniform` pattern; the Fig 9 workload
/// uses this with per-process delay so that *frequency*, not locality,
/// differentiates the processes.
#[derive(Debug, Clone)]
pub struct UniformPattern {
    pages: u32,
}

impl UniformPattern {
    /// Uniform pattern over `pages` pages.
    pub fn new(pages: u32) -> UniformPattern {
        assert!(pages > 0);
        UniformPattern { pages }
    }
}

impl AccessPattern for UniformPattern {
    fn sample(&mut self, rng: &mut DetRng) -> Vpn {
        Vpn(rng.below(self.pages as u64) as u32)
    }

    fn pages(&self) -> u32 {
        self.pages
    }
}

/// pmbench's `normal_ih` pattern: Gaussian over the address space, centred at
/// the middle, optionally strided.
///
/// With `stride = 2` consecutive logical offsets map to every other page, so
/// a 2 MiB huge page in the hot region has only half its 4 KiB sub-pages
/// touched — the *hotness fragmentation* behind Memtis's recall loss in
/// Fig 2a and its base-page struggles in Fig 6.
#[derive(Debug, Clone)]
pub struct GaussianPattern {
    pages: u32,
    stride: u32,
    /// Standard deviation as a fraction of the strided index range.
    sigma_frac: f64,
}

impl GaussianPattern {
    /// Gaussian over `pages` pages with the given stride; `sigma_frac` is the
    /// standard deviation as a fraction of the logical index range (the paper
    /// workload's "hot region defined by the normal distribution" is the
    /// centre 25 % of the space, ≈ ±1σ with the default 0.125).
    pub fn new(pages: u32, stride: u32, sigma_frac: f64) -> GaussianPattern {
        assert!(pages > 0 && stride > 0);
        assert!(stride <= pages, "stride must not exceed the page count");
        assert!(sigma_frac > 0.0);
        GaussianPattern {
            pages,
            stride,
            sigma_frac,
        }
    }

    /// The paper's Section 5.1 configuration: stride 2, σ = 12.5 %.
    pub fn paper_default(pages: u32) -> GaussianPattern {
        GaussianPattern::new(pages, 2, 0.125)
    }

    /// Number of logical (strided) slots.
    fn slots(&self) -> u32 {
        self.pages / self.stride
    }

    /// Whether `vpn` lies in the centre `frac` of the address range — the
    /// ground-truth hot region used by the F1-score experiment (Fig 2a).
    pub fn in_hot_center(&self, vpn: Vpn, frac: f64) -> bool {
        let lo = (self.pages as f64 * (0.5 - frac / 2.0)) as u32;
        let hi = (self.pages as f64 * (0.5 + frac / 2.0)) as u32;
        (lo..hi).contains(&vpn.0)
    }
}

impl AccessPattern for GaussianPattern {
    fn sample(&mut self, rng: &mut DetRng) -> Vpn {
        let slots = self.slots() as f64;
        let center = slots / 2.0;
        let sigma = slots * self.sigma_frac;
        // Resample tails rather than clamping, so the edges don't accumulate
        // spurious hot spikes.
        let slot = loop {
            let x = rng.normal(center, sigma);
            if x >= 0.0 && x < slots {
                break x as u32;
            }
        };
        Vpn(slot * self.stride)
    }

    fn pages(&self) -> u32 {
        self.pages
    }
}

/// Zipf-popularity pages, rank-shuffled across the space via a multiplicative
/// hash so that hot pages are scattered (as hash-table and allocator layouts
/// scatter hot objects in practice).
#[derive(Debug, Clone)]
pub struct ZipfPattern {
    pages: u32,
    zipf: Zipf,
    scatter: bool,
}

impl ZipfPattern {
    /// Zipf(θ) over `pages` pages; `scatter` spreads ranks over the space.
    pub fn new(pages: u32, theta: f64, scatter: bool) -> ZipfPattern {
        ZipfPattern {
            pages,
            zipf: Zipf::new(pages as u64, theta),
            scatter,
        }
    }

    /// Maps a popularity rank to its page, mirroring `sample`'s layout.
    pub fn rank_to_page(&self, rank: u32) -> Vpn {
        if self.scatter {
            // Fibonacci-hash permutation: odd multiplier => bijective mod 2^32,
            // then reduced to the page count via the high-quality upper bits.
            let h = (rank as u64).wrapping_mul(0x9E3779B97F4A7C15);
            Vpn((h % self.pages as u64) as u32)
        } else {
            Vpn(rank)
        }
    }
}

impl AccessPattern for ZipfPattern {
    fn sample(&mut self, rng: &mut DetRng) -> Vpn {
        let rank = self.zipf.sample(rng) as u32;
        self.rank_to_page(rank)
    }

    fn pages(&self) -> u32 {
        self.pages
    }
}

/// A two-level hot/cold set: a fraction of pages receives a fraction of
/// accesses (e.g. 10 % of pages get 90 % of accesses). Useful for targeted
/// tests of promotion correctness with a known ground truth.
#[derive(Debug, Clone)]
pub struct HotsetPattern {
    pages: u32,
    hot_pages: u32,
    hot_prob: f64,
}

impl HotsetPattern {
    /// `hot_frac` of the pages receive `hot_prob` of the accesses; the hot
    /// set occupies the *front* of the address space.
    pub fn new(pages: u32, hot_frac: f64, hot_prob: f64) -> HotsetPattern {
        assert!((0.0..=1.0).contains(&hot_frac));
        assert!((0.0..=1.0).contains(&hot_prob));
        HotsetPattern {
            pages,
            hot_pages: ((pages as f64 * hot_frac) as u32).max(1),
            hot_prob,
        }
    }

    /// Whether a page belongs to the hot set.
    pub fn is_hot(&self, vpn: Vpn) -> bool {
        vpn.0 < self.hot_pages
    }

    /// Size of the hot set in pages.
    pub fn hot_pages(&self) -> u32 {
        self.hot_pages
    }
}

impl AccessPattern for HotsetPattern {
    fn sample(&mut self, rng: &mut DetRng) -> Vpn {
        if rng.chance(self.hot_prob) {
            Vpn(rng.below(self.hot_pages as u64) as u32)
        } else {
            let cold = self.pages - self.hot_pages;
            if cold == 0 {
                Vpn(rng.below(self.pages as u64) as u32)
            } else {
                Vpn(self.hot_pages + rng.below(cold as u64) as u32)
            }
        }
    }

    fn pages(&self) -> u32 {
        self.pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_space() {
        let mut p = UniformPattern::new(100);
        let mut rng = DetRng::seed(1);
        let mut seen = vec![false; 100];
        for _ in 0..10_000 {
            seen[p.sample(&mut rng).0 as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 95);
    }

    #[test]
    fn gaussian_concentrates_in_center() {
        let p = GaussianPattern::paper_default(1000);
        let mut rng = DetRng::seed(2);
        let n = 20_000;
        let center_hits = (0..n)
            .filter(|_| p.in_hot_center(p.clone().sample(&mut rng), 0.25))
            .count();
        // ±1σ of a Gaussian holds ≈68 % of the mass.
        let frac = center_hits as f64 / n as f64;
        assert!(frac > 0.6 && frac < 0.76, "center fraction was {}", frac);
    }

    #[test]
    fn gaussian_stride_leaves_odd_pages_cold() {
        let mut p = GaussianPattern::new(1000, 2, 0.125);
        let mut rng = DetRng::seed(3);
        for _ in 0..5_000 {
            let v = p.sample(&mut rng);
            assert_eq!(v.0 % 2, 0, "stride-2 pattern touched an odd page");
        }
    }

    #[test]
    fn gaussian_samples_in_bounds() {
        let mut p = GaussianPattern::new(64, 2, 0.5); // fat tails force resampling
        let mut rng = DetRng::seed(4);
        for _ in 0..10_000 {
            assert!(p.sample(&mut rng).0 < 64);
        }
    }

    #[test]
    fn hot_center_boundaries() {
        let p = GaussianPattern::paper_default(1000);
        assert!(p.in_hot_center(Vpn(500), 0.25));
        assert!(p.in_hot_center(Vpn(380), 0.25));
        assert!(!p.in_hot_center(Vpn(370), 0.25));
        assert!(!p.in_hot_center(Vpn(630), 0.25));
    }

    #[test]
    fn zipf_scatter_preserves_skew() {
        let mut p = ZipfPattern::new(10_000, 0.99, true);
        let mut rng = DetRng::seed(5);
        let n = 50_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(p.sample(&mut rng).0).or_insert(0u32) += 1;
        }
        let mut freqs: Vec<u32> = counts.into_values().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Top page should vastly exceed median-popularity pages.
        assert!(freqs[0] > 50, "top page count was {}", freqs[0]);
    }

    #[test]
    fn zipf_rank_map_is_deterministic() {
        let p = ZipfPattern::new(100, 0.9, true);
        assert_eq!(p.rank_to_page(7), p.rank_to_page(7));
        let q = ZipfPattern::new(100, 0.9, false);
        assert_eq!(q.rank_to_page(7), Vpn(7));
    }

    #[test]
    fn hotset_ratio_holds() {
        let mut p = HotsetPattern::new(1000, 0.1, 0.9);
        let mut rng = DetRng::seed(6);
        let n = 50_000;
        let hot = (0..n)
            .filter(|_| p.clone().is_hot(p.sample(&mut rng)))
            .count();
        let frac = hot as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "hot fraction was {}", frac);
    }

    #[test]
    fn hotset_all_hot_degenerate() {
        let mut p = HotsetPattern::new(10, 1.0, 0.5);
        let mut rng = DetRng::seed(7);
        for _ in 0..100 {
            assert!(p.sample(&mut rng).0 < 10);
        }
    }
}
