//! Phase-shifting workloads: the hot region moves mid-run.
//!
//! The paper's central flexibility claim is that Chrono "adapts to changing
//! workload patterns" via run-time statistics; a phased workload is the
//! directed test for it — a policy with stale placement must detect the new
//! hot set and re-converge.

use sim_clock::{DetRng, Nanos};
use tiered_mem::Vpn;

use crate::{AccessReq, Workload};

/// A workload whose Gaussian hot centre jumps every `phase_accesses`.
#[derive(Debug)]
pub struct PhasedWorkload {
    pages: u32,
    sigma_frac: f64,
    read_ratio: f64,
    phase_accesses: u64,
    /// Hot-centre positions (fractions of the space) cycled per phase.
    centers: Vec<f64>,
    issued: u64,
    rng: DetRng,
    total_accesses: u64,
}

impl PhasedWorkload {
    /// A workload over `pages` pages whose hot centre cycles through
    /// `centers` every `phase_accesses` accesses.
    pub fn new(
        pages: u32,
        centers: Vec<f64>,
        phase_accesses: u64,
        read_ratio: f64,
        seed: u64,
    ) -> PhasedWorkload {
        assert!(!centers.is_empty(), "need at least one phase centre");
        assert!(centers.iter().all(|c| (0.0..=1.0).contains(c)));
        PhasedWorkload {
            pages,
            sigma_frac: 0.08,
            read_ratio,
            phase_accesses: phase_accesses.max(1),
            centers,
            issued: 0,
            rng: DetRng::seed(seed),
            total_accesses: u64::MAX,
        }
    }

    /// Bounds the total accesses (after which the workload finishes).
    pub fn with_total_accesses(mut self, total: u64) -> PhasedWorkload {
        self.total_accesses = total;
        self
    }

    /// The phase index active at a given access count.
    pub fn phase_at(&self, issued: u64) -> usize {
        ((issued / self.phase_accesses) as usize) % self.centers.len()
    }

    /// Current phase index.
    pub fn current_phase(&self) -> usize {
        self.phase_at(self.issued)
    }

    /// Whether `vpn` lies within ±1σ of the hot centre of `phase`.
    pub fn in_phase_hot_region(&self, phase: usize, vpn: Vpn) -> bool {
        let center = self.centers[phase % self.centers.len()] * self.pages as f64;
        let sigma = self.sigma_frac * self.pages as f64;
        (vpn.0 as f64 - center).abs() <= sigma
    }
}

impl Workload for PhasedWorkload {
    fn next_access(&mut self) -> Option<AccessReq> {
        if self.issued >= self.total_accesses {
            return None;
        }
        let phase = self.current_phase();
        self.issued += 1;
        let center = self.centers[phase] * self.pages as f64;
        let sigma = self.sigma_frac * self.pages as f64;
        let vpn = loop {
            let x = self.rng.normal(center, sigma);
            if x >= 0.0 && x < self.pages as f64 {
                break Vpn(x as u32);
            }
        };
        let write = !self.rng.chance(self.read_ratio);
        Some(AccessReq {
            vpn,
            write,
            think: Nanos::ZERO,
        })
    }

    fn address_space_pages(&self) -> u32 {
        self.pages
    }

    fn label(&self) -> String {
        format!("phased(pages={},phases={})", self.pages, self.centers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_cycle_on_schedule() {
        let w = PhasedWorkload::new(1000, vec![0.2, 0.8], 100, 0.7, 1);
        assert_eq!(w.phase_at(0), 0);
        assert_eq!(w.phase_at(99), 0);
        assert_eq!(w.phase_at(100), 1);
        assert_eq!(w.phase_at(200), 0);
    }

    #[test]
    fn accesses_follow_the_active_center() {
        let mut w = PhasedWorkload::new(10_000, vec![0.2, 0.8], 5_000, 0.7, 2);
        let mut phase0_hits = 0;
        for _ in 0..5_000 {
            let r = w.next_access().unwrap();
            phase0_hits += w.in_phase_hot_region(0, r.vpn) as u32;
        }
        let mut phase1_hits = 0;
        for _ in 0..5_000 {
            let r = w.next_access().unwrap();
            phase1_hits += w.in_phase_hot_region(1, r.vpn) as u32;
        }
        // ±1σ of a Gaussian is ~68 % of mass.
        assert!(phase0_hits > 3_000, "phase-0 hits {}", phase0_hits);
        assert!(phase1_hits > 3_000, "phase-1 hits {}", phase1_hits);
    }

    #[test]
    fn hot_regions_are_disjoint_when_centers_are_far() {
        let w = PhasedWorkload::new(10_000, vec![0.2, 0.8], 100, 0.7, 3);
        // No page is hot in both phases when centres are 0.6 apart and σ=0.08.
        for vpn in (0..10_000).step_by(17) {
            assert!(
                !(w.in_phase_hot_region(0, Vpn(vpn)) && w.in_phase_hot_region(1, Vpn(vpn))),
                "page {} hot in both phases",
                vpn
            );
        }
    }

    #[test]
    fn bounded_workload_finishes() {
        let mut w = PhasedWorkload::new(100, vec![0.5], 10, 0.7, 4).with_total_accesses(25);
        let mut n = 0;
        while w.next_access().is_some() {
            n += 1;
        }
        assert_eq!(n, 25);
    }
}
