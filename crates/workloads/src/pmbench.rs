//! A pmbench-style paging microbenchmark.
//!
//! Models the workload of Sections 2.4 and 5.1: each process owns a private
//! working set and issues single-page accesses drawn from a configurable
//! pattern, with a read/write ratio and an optional per-access `delay` (the
//! Fig 9 knob: process *i* stalls `i` units of 50 cycles before each access,
//! grading the processes' access frequencies).

use sim_clock::{DetRng, Nanos};
use tiered_mem::Vpn;

use crate::pattern::{AccessPattern, GaussianPattern, UniformPattern};
use crate::{AccessReq, Workload};

/// Nanoseconds per pmbench delay unit: 50 cycles at the paper's 2.6 GHz.
pub const DELAY_UNIT: Nanos = Nanos(19);

/// Configuration of one pmbench process.
#[derive(Debug, Clone)]
pub struct PmbenchConfig {
    /// Working-set size in base pages.
    pub pages: u32,
    /// Read fraction (e.g. 0.95 for the paper's 95:5 ratio).
    pub read_ratio: f64,
    /// Delay units (50-cycle stalls) added before every access.
    pub delay_units: u32,
    /// Access pattern selection.
    pub pattern: PmbenchPattern,
    /// RNG seed for this process.
    pub seed: u64,
    /// Total accesses to issue; `u64::MAX` for "until the driver stops us".
    pub total_accesses: u64,
    /// Touch the whole working set sequentially before the measured phase —
    /// pmbench's setup behaviour, and the paper's methodology for equalizing
    /// the initial page distribution. Init accesses do not count against
    /// `total_accesses`.
    pub sequential_init: bool,
}

/// The pmbench access patterns used in the paper.
#[derive(Debug, Clone)]
pub enum PmbenchPattern {
    /// `normal_ih` with a stride (Section 5.1 uses stride 2).
    Gaussian {
        /// Stride applied to the Gaussian slot index.
        stride: u32,
        /// σ as a fraction of the logical index range.
        sigma_frac: f64,
    },
    /// Uniformly random (the Fig 9 multi-tenant workload).
    Uniform,
}

impl PmbenchConfig {
    /// The Section 5.1 skewed/sparse configuration over `pages` pages.
    pub fn paper_skewed(pages: u32, read_ratio: f64, seed: u64) -> PmbenchConfig {
        PmbenchConfig {
            pages,
            read_ratio,
            delay_units: 0,
            pattern: PmbenchPattern::Gaussian {
                stride: 2,
                sigma_frac: 0.125,
            },
            seed,
            total_accesses: u64::MAX,
            sequential_init: true,
        }
    }

    /// The Fig 9 configuration: uniform pattern, graded delay.
    pub fn fig9_tenant(pages: u32, delay_units: u32, seed: u64) -> PmbenchConfig {
        PmbenchConfig {
            pages,
            read_ratio: 0.7,
            delay_units,
            pattern: PmbenchPattern::Uniform,
            seed,
            total_accesses: u64::MAX,
            sequential_init: true,
        }
    }
}

enum Pattern {
    Gaussian(GaussianPattern),
    Uniform(UniformPattern),
}

/// A running pmbench process.
pub struct PmbenchWorkload {
    cfg: PmbenchConfig,
    pattern: Pattern,
    rng: DetRng,
    issued: u64,
    init_cursor: u32,
}

impl PmbenchWorkload {
    /// Instantiates the benchmark from its configuration.
    pub fn new(cfg: PmbenchConfig) -> PmbenchWorkload {
        let pattern = match cfg.pattern {
            PmbenchPattern::Gaussian { stride, sigma_frac } => {
                Pattern::Gaussian(GaussianPattern::new(cfg.pages, stride, sigma_frac))
            }
            PmbenchPattern::Uniform => Pattern::Uniform(UniformPattern::new(cfg.pages)),
        };
        let rng = DetRng::seed(cfg.seed);
        let init_cursor = if cfg.sequential_init { 0 } else { cfg.pages };
        PmbenchWorkload {
            cfg,
            pattern,
            rng,
            issued: 0,
            init_cursor,
        }
    }

    /// Ground-truth hot-region test for the F1 experiment: whether `vpn` is
    /// in the centre `frac` of the space (only meaningful for the Gaussian
    /// pattern).
    pub fn in_hot_center(&self, vpn: tiered_mem::Vpn, frac: f64) -> bool {
        match &self.pattern {
            Pattern::Gaussian(g) => g.in_hot_center(vpn, frac),
            Pattern::Uniform(_) => false,
        }
    }
}

impl Workload for PmbenchWorkload {
    fn next_access(&mut self) -> Option<AccessReq> {
        if self.init_cursor < self.cfg.pages {
            let vpn = Vpn(self.init_cursor);
            self.init_cursor += 1;
            return Some(AccessReq {
                vpn,
                write: true,
                think: Nanos::ZERO,
            });
        }
        if self.issued >= self.cfg.total_accesses {
            return None;
        }
        self.issued += 1;
        let vpn = match &mut self.pattern {
            Pattern::Gaussian(g) => g.sample(&mut self.rng),
            Pattern::Uniform(u) => u.sample(&mut self.rng),
        };
        let write = !self.rng.chance(self.cfg.read_ratio);
        Some(AccessReq {
            vpn,
            write,
            think: DELAY_UNIT.scale(self.cfg.delay_units as u64),
        })
    }

    fn address_space_pages(&self) -> u32 {
        self.cfg.pages
    }

    fn label(&self) -> String {
        format!(
            "pmbench(pages={},r={:.0}%,delay={})",
            self.cfg.pages,
            self.cfg.read_ratio * 100.0,
            self.cfg.delay_units
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Consumes the sequential-init accesses of a workload.
    fn drain_init(w: &mut PmbenchWorkload, pages: u32) {
        for i in 0..pages {
            let r = w.next_access().unwrap();
            assert_eq!(r.vpn, Vpn(i), "init must be sequential");
            assert!(r.write, "init accesses are writes");
        }
    }

    #[test]
    fn read_write_ratio_is_respected() {
        let mut w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(1000, 0.95, 42));
        drain_init(&mut w, 1000);
        let n = 20_000;
        let writes = (0..n).filter(|_| w.next_access().unwrap().write).count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.01, "write fraction was {}", frac);
    }

    #[test]
    fn delay_translates_to_think_time() {
        let mut w = PmbenchWorkload::new(PmbenchConfig::fig9_tenant(100, 10, 1));
        drain_init(&mut w, 100);
        let req = w.next_access().unwrap();
        assert_eq!(req.think, Nanos(190));
    }

    #[test]
    fn zero_delay_means_no_think() {
        let mut w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(100, 0.5, 1));
        drain_init(&mut w, 100);
        assert_eq!(w.next_access().unwrap().think, Nanos::ZERO);
    }

    #[test]
    fn finite_workload_terminates_after_init_plus_ops() {
        let mut cfg = PmbenchConfig::paper_skewed(100, 0.5, 1);
        cfg.total_accesses = 5;
        let mut w = PmbenchWorkload::new(cfg);
        let mut count = 0;
        while w.next_access().is_some() {
            count += 1;
        }
        assert_eq!(count, 100 + 5);
    }

    #[test]
    fn init_can_be_disabled() {
        let mut cfg = PmbenchConfig::paper_skewed(100, 0.5, 1);
        cfg.sequential_init = false;
        cfg.total_accesses = 7;
        let mut w = PmbenchWorkload::new(cfg);
        let mut count = 0;
        while w.next_access().is_some() {
            count += 1;
        }
        assert_eq!(count, 7);
    }

    #[test]
    fn same_seed_reproduces_stream() {
        let mk = || PmbenchWorkload::new(PmbenchConfig::paper_skewed(512, 0.7, 99));
        let mut a = mk();
        let mut b = mk();
        for _ in 0..100 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn skewed_pattern_reports_hot_center() {
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(1000, 0.95, 7));
        assert!(w.in_hot_center(tiered_mem::Vpn(500), 0.25));
        assert!(!w.in_hot_center(tiered_mem::Vpn(10), 0.25));
    }
}
