//! Access-trace recording and replay.
//!
//! Lets any workload be captured once and replayed deterministically —
//! useful for regression-testing policies against a frozen access stream,
//! for cross-policy comparisons on *identical* inputs, and for importing
//! externally collected traces. The on-disk format is a simple
//! little-endian record stream with a magic header; no external
//! serialization dependencies.

use std::io::{self, Read, Write};

use sim_clock::Nanos;
use tiered_mem::Vpn;

use crate::{AccessReq, Workload};

const MAGIC: &[u8; 8] = b"CHRTRC01";

/// One recorded access: `AccessReq` plus nothing else (pids are implicit —
/// one trace per process).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Target page.
    pub vpn: u32,
    /// Store flag.
    pub write: bool,
    /// Think time before the access, nanoseconds.
    pub think_ns: u64,
}

impl From<AccessReq> for TraceRecord {
    fn from(r: AccessReq) -> TraceRecord {
        TraceRecord {
            vpn: r.vpn.0,
            write: r.write,
            think_ns: r.think.as_nanos(),
        }
    }
}

impl From<TraceRecord> for AccessReq {
    fn from(r: TraceRecord) -> AccessReq {
        AccessReq {
            vpn: Vpn(r.vpn),
            write: r.write,
            think: Nanos(r.think_ns),
        }
    }
}

/// An in-memory access trace for one process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Address-space size the trace was recorded against.
    pub pages: u32,
    /// The recorded accesses.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Captures up to `max_accesses` from a workload.
    pub fn record<W: Workload>(workload: &mut W, max_accesses: usize) -> Trace {
        let mut records = Vec::new();
        while records.len() < max_accesses {
            match workload.next_access() {
                Some(req) => records.push(req.into()),
                None => break,
            }
        }
        Trace {
            pages: workload.address_space_pages(),
            records,
        }
    }

    /// Serializes the trace.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&self.pages.to_le_bytes())?;
        w.write_all(&(self.records.len() as u64).to_le_bytes())?;
        for r in &self.records {
            w.write_all(&r.vpn.to_le_bytes())?;
            w.write_all(&[r.write as u8])?;
            w.write_all(&r.think_ns.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserializes a trace written by [`Trace::write_to`].
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Trace> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a chrono-repro trace (bad magic)",
            ));
        }
        let mut b4 = [0u8; 4];
        let mut b8 = [0u8; 8];
        r.read_exact(&mut b4)?;
        let pages = u32::from_le_bytes(b4);
        r.read_exact(&mut b8)?;
        let count = u64::from_le_bytes(b8) as usize;
        let mut records = Vec::with_capacity(count.min(1 << 24));
        for _ in 0..count {
            r.read_exact(&mut b4)?;
            let vpn = u32::from_le_bytes(b4);
            let mut flag = [0u8; 1];
            r.read_exact(&mut flag)?;
            r.read_exact(&mut b8)?;
            records.push(TraceRecord {
                vpn,
                write: flag[0] != 0,
                think_ns: u64::from_le_bytes(b8),
            });
        }
        Ok(Trace { pages, records })
    }

    /// Turns the trace into a replayable workload.
    pub fn into_workload(self) -> TraceWorkload {
        TraceWorkload {
            trace: self,
            cursor: 0,
        }
    }
}

/// Replays a recorded trace as a [`Workload`].
#[derive(Debug)]
pub struct TraceWorkload {
    trace: Trace,
    cursor: usize,
}

impl Workload for TraceWorkload {
    fn next_access(&mut self) -> Option<AccessReq> {
        let r = self.trace.records.get(self.cursor)?;
        self.cursor += 1;
        Some((*r).into())
    }

    fn address_space_pages(&self) -> u32 {
        self.trace.pages
    }

    fn label(&self) -> String {
        format!("trace({} records)", self.trace.records.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PmbenchConfig, PmbenchWorkload};

    #[test]
    fn record_and_replay_are_identical() {
        let mut original = PmbenchWorkload::new(PmbenchConfig::paper_skewed(512, 0.7, 7));
        let trace = Trace::record(&mut original, 1000);
        assert_eq!(trace.records.len(), 1000);
        assert_eq!(trace.pages, 512);

        let mut fresh = PmbenchWorkload::new(PmbenchConfig::paper_skewed(512, 0.7, 7));
        let mut replay = trace.into_workload();
        for _ in 0..1000 {
            assert_eq!(fresh.next_access(), replay.next_access());
        }
        assert!(replay.next_access().is_none());
    }

    #[test]
    fn serialization_round_trips() {
        let mut w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(256, 0.5, 3));
        let trace = Trace::record(&mut w, 500);
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&buf[..]).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Trace::read_from(&b"not a trace at all"[..]).is_err());
        let mut buf = Vec::new();
        Trace {
            pages: 1,
            records: vec![],
        }
        .write_to(&mut buf)
        .unwrap();
        buf[0] ^= 0xFF;
        assert!(Trace::read_from(&buf[..]).is_err());
    }

    #[test]
    fn finite_workloads_truncate_naturally() {
        let mut cfg = PmbenchConfig::paper_skewed(64, 0.5, 1);
        cfg.total_accesses = 10;
        let mut w = PmbenchWorkload::new(cfg);
        let trace = Trace::record(&mut w, 1_000_000);
        // 64 init accesses + 10 measured.
        assert_eq!(trace.records.len(), 74);
    }
}
