//! Adaptive tuning in action: a phase-shifting workload under full Chrono,
//! with the CIT threshold and rate-limit traces printed as the hot region
//! jumps — plus the procfs-style control surface.
//!
//! ```text
//! cargo run --release --example adaptive_tuning
//! ```

use chrono_repro::chrono_core::{controls, ChronoConfig, ChronoPolicy};
use chrono_repro::sim_clock::Nanos;
use chrono_repro::tiered_mem::{PageSize, SystemConfig, TieredSystem};
use chrono_repro::tiering_policies::{DriverConfig, SimulationDriver};
use chrono_repro::workloads::{PhasedWorkload, Workload};

fn main() {
    let pages = 8192u32;
    let mut sys = TieredSystem::new(SystemConfig::quarter_fast(pages + pages / 4));
    // Hot region at 25 % of the space, jumping to 75 % after ~6M accesses.
    let w = PhasedWorkload::new(pages, vec![0.25, 0.75], 6_000_000, 0.7, 99);
    sys.add_process(w.address_space_pages(), PageSize::Base);
    let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];

    let mut chrono = ChronoPolicy::new(ChronoConfig {
        p_victim: 0.002,
        ..ChronoConfig::scaled(Nanos::from_millis(100), 1024)
    });

    println!("procfs control surface before the run:");
    println!("{}\n", chrono.dump_params());
    // A system manager could pin parameters at run time:
    chrono.set_param("thrash_threshold", "0.25").unwrap();
    assert_eq!(chrono.get_param("thrash_threshold").unwrap(), "0.25");
    for key in controls::KEYS.iter().take(2) {
        let _ = chrono.get_param(key).unwrap();
    }

    let r = SimulationDriver::new(DriverConfig {
        run_for: Nanos::from_millis(2500),
        ..Default::default()
    })
    .run(&mut sys, &mut wls, &mut chrono);

    println!(
        "ran {} accesses over {:.2} simulated seconds; FMAR {:.1}%\n",
        r.accesses,
        r.makespan.as_secs_f64(),
        sys.stats.fmar() * 100.0
    );
    println!("{:>8}  {:>14}  {:>12}", "time", "threshold", "rate limit");
    let th = chrono.threshold_history();
    let rl = chrono.rate_history();
    for ((t, ms), (_, mbps)) in th.iter().zip(rl) {
        println!(
            "{:>8.2}s {:>12.3}ms {:>10.1}MB/s",
            t.as_secs_f64(),
            ms,
            mbps
        );
    }
    println!(
        "\nthrashing events: {} (rate limit halved on >{}% per period)",
        chrono.thrash_events(),
        chrono.get_param("thrash_threshold").unwrap()
    );
}
