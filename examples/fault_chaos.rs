//! Chaos run: Chrono under the canonical deterministic fault plan.
//!
//! Runs the same skewed workload twice under full Chrono (2-round
//! filtering with DCSC): once fault-free, once with
//! `FaultPlan::canonical` attached —
//! 1 % transient copy faults, 0.01 % frame poisoning, and one mid-run 25 %
//! fast-tier capacity shrink (the harness `--fault-plan canonical` knob).
//! The resilience layer has to absorb all three:
//!
//! * transient `CopyFault`s land in the bounded exponential-backoff retry
//!   pool and are re-validated against the current CIT threshold before
//!   re-issue;
//! * `Poisoned` frames are quarantined, never re-allocated, and their pages
//!   soft-offlined to the other tier;
//! * the capacity shrink forces a watermark recompute, and the circuit
//!   breaker keeps a failure-ratio spike from wedging the promotion path.
//!
//! The run asserts the paper-style resilience bar: chaos throughput within
//! 15 % of the fault-free run, and the replayability bar: same plan + same
//! seed ⇒ identical fault counters.
//!
//! ```text
//! cargo run --release --example fault_chaos
//! ```

use chrono_repro::chrono_core::{ChronoConfig, ChronoPolicy};
use chrono_repro::sim_clock::Nanos;
use chrono_repro::tiered_mem::{FaultPlan, PageSize, SystemConfig, TierId, TieredSystem};
use chrono_repro::tiering_policies::{DriverConfig, RunResult, SimulationDriver};
use chrono_repro::workloads::{PmbenchConfig, PmbenchWorkload, Workload};

const TOTAL_FRAMES: u32 = 8_192;
const RUN_FOR: Nanos = Nanos::from_millis(1_500);
const FAULT_SEED: u64 = 0xFA17;

fn run_once(plan: Option<FaultPlan>) -> (TieredSystem, ChronoPolicy, RunResult) {
    let mut cfg = SystemConfig::quarter_fast(TOTAL_FRAMES);
    cfg.fault_plan = plan;
    let mut sys = TieredSystem::new(cfg);

    let workload = PmbenchWorkload::new(PmbenchConfig::paper_skewed(6_144, 0.7, 7));
    sys.add_process(workload.address_space_pages(), PageSize::Base);
    let mut workloads: Vec<Box<dyn Workload>> = vec![Box::new(workload)];

    let mut chrono = ChronoPolicy::new(ChronoConfig::scaled(Nanos::from_millis(100), 1024));
    let cfg = DriverConfig {
        run_for: RUN_FOR,
        ..Default::default()
    };
    let result = SimulationDriver::new(cfg).run(&mut sys, &mut workloads, &mut chrono);
    (sys, chrono, result)
}

fn main() {
    let (clean_sys, _, clean) = run_once(None);
    let plan = FaultPlan::canonical(FAULT_SEED, RUN_FOR);
    let (sys, chrono, chaos) = run_once(Some(plan.clone()));

    let s = &sys.stats;
    println!("fault-free throughput : {:>12.0} acc/s", clean.throughput());
    println!("chaos throughput      : {:>12.0} acc/s", chaos.throughput());
    println!(
        "copy faults           : {} transient, {} poisoned",
        s.transient_copy_faults, s.poisoned_copy_faults
    );
    println!(
        "quarantine / offline  : {} quarantined, {} offlined, {} restored",
        s.quarantined_frames, s.offlined_frames, s.restored_frames
    );
    let flow = chrono.retry_flow();
    println!(
        "retry flow            : {} failed = {} retried + {} abandoned + {} pending",
        flow.failed, flow.retried, flow.abandoned, flow.pending
    );
    println!(
        "breaker / degradation : {} trips (open now: {}), dcsc degraded: {}",
        chrono.breaker_trips(),
        chrono.breaker_open(),
        chrono.is_degraded()
    );
    println!(
        "fast tier usable      : {} of {} raw frames",
        sys.total_frames(TierId::FAST),
        sys.raw_frames(TierId::FAST)
    );

    // Sanity: the plan actually fired, including its mid-run shrink.
    assert!(
        s.transient_copy_faults > 0,
        "canonical plan fired no transient copy faults"
    );
    assert!(
        sys.total_frames(TierId::FAST) < clean_sys.total_frames(TierId::FAST),
        "mid-run 25 % shrink left the fast tier at full capacity"
    );
    assert!(flow.conserved(), "retry flow does not balance");

    // The resilience bar: chaos within 15 % of fault-free throughput.
    let ratio = chaos.throughput() / clean.throughput();
    println!(
        "throughput ratio      : {:.1} % of fault-free",
        ratio * 100.0
    );
    assert!(
        ratio >= 0.85,
        "chaos throughput dropped {:.1} % (bar: 15 %)",
        (1.0 - ratio) * 100.0
    );

    // The replayability bar: same plan, same seed, same fault sequence.
    let (sys2, _, chaos2) = run_once(Some(plan));
    assert_eq!(
        chaos.accesses, chaos2.accesses,
        "chaos run is not replayable"
    );
    assert_eq!(s.transient_copy_faults, sys2.stats.transient_copy_faults);
    assert_eq!(s.poisoned_copy_faults, sys2.stats.poisoned_copy_faults);
    assert_eq!(s.quarantined_frames, sys2.stats.quarantined_frames);
    println!("chaos run replayed bit-identically; resilience bar held");
}
