//! Graph analytics scenario: Graph500-style BFS over a scale-free graph
//! whose CSR working set exceeds DRAM — the Section 5.2 setting. Prints
//! execution time for every policy, base vs. huge pages.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use chrono_repro::harness::runner::{quarter_system, PolicyKind, Scale};
use chrono_repro::sim_clock::Nanos;
use chrono_repro::tiered_mem::PageSize;
use chrono_repro::tiering_policies::{DriverConfig, SimulationDriver};
use chrono_repro::workloads::{Graph500Config, Graph500Workload, GraphKernel, Workload};

fn exec_time(kind: PolicyKind, page_size: PageSize) -> Nanos {
    let scale = Scale::default_scale();
    let mut sys = quarter_system(&scale, 12_288);
    let mut wls: Vec<Box<dyn Workload>> = (0..2)
        .map(|i| {
            let mut cfg = Graph500Config::sized_to_pages(4_096, GraphKernel::Bfs, 21 + i);
            cfg.roots = 2;
            Box::new(Graph500Workload::new(cfg)) as Box<dyn Workload>
        })
        .collect();
    for w in &wls {
        sys.add_process(w.address_space_pages(), page_size);
    }
    let mut policy = kind.build(&scale);
    let r = SimulationDriver::new(DriverConfig {
        run_for: Nanos::from_secs(600),
        ..Default::default()
    })
    .run(&mut sys, &mut wls, &mut *policy);
    assert!(r.workloads_finished, "BFS must run to completion");
    r.makespan
}

fn main() {
    println!("Graph500 BFS, 2 processes, CSR working set 2x the fast tier\n");
    println!("{:<14} {:>16} {:>16}", "policy", "base pages", "huge pages");
    let mut base_nb = None;
    for kind in PolicyKind::MAIN {
        let base = exec_time(kind, PageSize::Base);
        let huge = exec_time(kind, PageSize::Huge2M);
        if kind == PolicyKind::LinuxNb {
            base_nb = Some(base);
        }
        let speedup = base_nb
            .map(|b| {
                format!(
                    "  ({:.2}x vs NB base)",
                    b.as_secs_f64() / base.as_secs_f64()
                )
            })
            .unwrap_or_default();
        println!(
            "{:<14} {:>16} {:>16}{}",
            kind.name(),
            format!("{}", base),
            format!("{}", huge),
            speedup
        );
    }
}
