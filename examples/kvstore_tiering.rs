//! In-memory KV store scenario: a Memcached-style store whose working set
//! exceeds DRAM, served by Chrono vs. Linux NUMA balancing — the Section 5.3
//! setting as a runnable demo.
//!
//! ```text
//! cargo run --release --example kvstore_tiering
//! ```

use chrono_repro::chrono_core::{ChronoConfig, ChronoPolicy};
use chrono_repro::sim_clock::Nanos;
use chrono_repro::tiered_mem::{PageSize, SystemConfig, TieredSystem};
use chrono_repro::tiering_policies::{
    linux_nb::LinuxNbConfig, DriverConfig, LinuxNumaBalancing, SimulationDriver, TieringPolicy,
};
use chrono_repro::workloads::{KvFlavor, KvStoreConfig, KvStoreWorkload, Workload};

fn run_store(policy: &mut dyn TieringPolicy) -> (f64, f64, Nanos) {
    let mut sys = TieredSystem::new(SystemConfig::quarter_fast(16_384));
    let store = KvStoreWorkload::new(KvStoreConfig::sized_to_pages(
        12_288,
        KvFlavor::Memcached,
        1.0 / 11.0, // memtier's 1:10 SET/GET mix
        7,
    ));
    sys.add_process(store.address_space_pages(), PageSize::Base);
    let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(store)];
    let r = SimulationDriver::new(DriverConfig {
        run_for: Nanos::from_millis(1200),
        ..Default::default()
    })
    .run(&mut sys, &mut wls, policy);
    (r.throughput(), sys.stats.fmar(), r.latency.quantile(0.99))
}

fn main() {
    println!("Memcached-style store, 500M-item-equivalent scaled to 12288 pages");
    println!("(Gaussian key popularity, SET:GET = 1:10)\n");

    let scan = Nanos::from_millis(100);
    let mut nb = LinuxNumaBalancing::new(LinuxNbConfig {
        scan_period: scan,
        scan_step_pages: 1024,
        promote_tier_frac_per_period: 0.23,
    });
    let (nb_thpt, nb_fmar, nb_p99) = run_store(&mut nb);

    let mut chrono = ChronoPolicy::new(ChronoConfig::scaled(scan, 1024));
    let (ch_thpt, ch_fmar, ch_p99) = run_store(&mut chrono);

    println!(
        "{:<10} {:>14} {:>8} {:>12}",
        "policy", "accesses/s", "FMAR", "P99 latency"
    );
    println!(
        "{:<10} {:>14.0} {:>7.1}% {:>12}",
        "Linux-NB",
        nb_thpt,
        nb_fmar * 100.0,
        nb_p99
    );
    println!(
        "{:<10} {:>14.0} {:>7.1}% {:>12}",
        "Chrono",
        ch_thpt,
        ch_fmar * 100.0,
        ch_p99
    );
    println!("\nChrono speedup: {:.2}x", ch_thpt / nb_thpt);
}
