//! In-flight migration under pressure: write-aborts and backpressure.
//!
//! Runs a write-heavy skewed workload under Chrono with a deliberately tiny
//! migration engine (few in-flight slots, short backlog cap — the same
//! knobs as the harness `--inflight-slots` / `--migration-backlog-cap`
//! flags). Two effects of the two-phase engine become visible:
//!
//! * *write-aborts*: a store into a unit whose copy is active on the
//!   channel invalidates the copy, so the transaction aborts and the
//!   reservation is released;
//! * *backpressure*: once the in-flight table or a channel's copy backlog
//!   is full, `begin_migrate` rejects with `MigrateError::Backpressure` and
//!   Chrono defers the rest of the promotion batch to the next drain.
//!
//! ```text
//! cargo run --release --example migration_inflight
//! ```

use chrono_repro::chrono_core::{ChronoConfig, ChronoPolicy};
use chrono_repro::sim_clock::Nanos;
use chrono_repro::tiered_mem::{MigrateError, MigrationSpec, PageSize, SystemConfig, TieredSystem};
use chrono_repro::tiering_policies::{DriverConfig, SimulationDriver};
use chrono_repro::workloads::{PmbenchConfig, PmbenchWorkload, Workload};

fn main() {
    // 2K fast frames over an 8K-frame system, with the migration engine
    // squeezed down to two in-flight slots: admission control binds on the
    // third promotion of every drain batch, while the two copies in flight
    // stay exposed to racing stores.
    let mut cfg = SystemConfig::quarter_fast(8_192);
    cfg.migration = MigrationSpec {
        inflight_slots: 2,
        backlog_cap: Nanos::from_micros(200),
    };
    let mut sys = TieredSystem::new(cfg);

    // 80 % writes (read ratio 0.2): stores race the in-flight copies.
    let workload = PmbenchWorkload::new(PmbenchConfig::paper_skewed(6_144, 0.2, 7));
    sys.add_process(workload.address_space_pages(), PageSize::Base);
    let mut workloads: Vec<Box<dyn Workload>> = vec![Box::new(workload)];

    let mut chrono = ChronoPolicy::new(ChronoConfig::scaled(Nanos::from_millis(100), 1024));
    let result =
        SimulationDriver::new(DriverConfig::for_secs(1)).run(&mut sys, &mut workloads, &mut chrono);

    let s = &sys.stats;
    println!("accesses executed   : {}", result.accesses);
    println!(
        "promoted / demoted  : {} / {} pages",
        s.promoted_pages, s.demoted_pages
    );
    println!(
        "transactions        : {} begun = {} completed + {} aborted + {} in flight",
        s.begun_migrations,
        s.completed_migrations,
        s.aborted_migrations,
        sys.migration_in_flight_count()
    );
    println!("fast-migrate rejects:");
    for (name, count) in MigrateError::REASONS.iter().zip(s.failed_fast_migrations) {
        println!("  {name:<12} {count}");
    }

    let backpressured = s.failed_fast_migrations[MigrateError::Backpressure.index()];
    assert!(
        s.aborted_migrations > 0,
        "expected write-aborts under an 80 % write mix"
    );
    assert!(
        backpressured > 0,
        "expected Backpressure rejects with 2 slots and a 200 us backlog cap"
    );
    println!("write-abort and backpressure paths both exercised");
}
