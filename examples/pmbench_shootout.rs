//! Policy shootout: every tiering policy on the paper's multi-process
//! pmbench workload, printing throughput, FMAR, and overhead side by side —
//! a miniature of the paper's Fig 6 + Fig 8.
//!
//! ```text
//! cargo run --release --example pmbench_shootout [read_pct]
//! ```

use chrono_repro::harness::{PolicyKind, Scale};
use chrono_repro::sim_clock::Nanos;
use chrono_repro::tiered_mem::PageSize;
use chrono_repro::workloads::{PmbenchConfig, PmbenchWorkload, Workload};

fn main() {
    let read_pct: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(70.0);
    let read_ratio = (read_pct / 100.0).clamp(0.0, 1.0);

    let scale = Scale {
        run_for: Nanos::from_millis(1000),
        ..Scale::default_scale()
    };
    let procs = 8usize;
    let pages = 2048u32;
    let total = procs as u32 * pages;

    println!(
        "pmbench shootout: {} processes x {} pages, R/W {:.0}:{:.0}\n",
        procs,
        pages,
        read_pct,
        100.0 - read_pct
    );
    println!(
        "{:<14} {:>12} {:>8} {:>9} {:>10} {:>10}",
        "policy", "accesses/s", "FMAR", "kernel%", "promoted", "demoted"
    );

    let mut baseline = None;
    for kind in [PolicyKind::Static].into_iter().chain(PolicyKind::MAIN) {
        let page_size = if kind == PolicyKind::Memtis {
            PageSize::Huge2M
        } else {
            PageSize::Base
        };
        let run = chrono_repro::harness::runner::run_policy(
            kind,
            &scale,
            total + total / 8,
            page_size,
            None,
            || {
                (0..procs)
                    .map(|i| {
                        Box::new(PmbenchWorkload::new(PmbenchConfig::paper_skewed(
                            pages,
                            read_ratio,
                            42 + i as u64,
                        ))) as Box<dyn Workload>
                    })
                    .collect()
            },
        );
        let thpt = run.throughput();
        if kind == PolicyKind::LinuxNb {
            baseline = Some(thpt);
        }
        let norm = baseline
            .map(|b| format!(" ({:.2}x vs NB)", thpt / b))
            .unwrap_or_default();
        println!(
            "{:<14} {:>12.0} {:>7.1}% {:>8.1}% {:>10} {:>10}{}",
            run.policy_name,
            thpt,
            run.sys.stats.fmar() * 100.0,
            run.sys.stats.kernel_time_fraction() * 100.0,
            run.sys.stats.promoted_pages,
            run.sys.stats.demoted_pages,
            norm,
        );
    }
}
