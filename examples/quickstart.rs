//! Quickstart: build a two-tier system, run a skewed workload under Chrono,
//! and print what the tiering achieved.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use chrono_repro::chrono_core::{ChronoConfig, ChronoPolicy};
use chrono_repro::sim_clock::Nanos;
use chrono_repro::tiered_mem::{PageSize, SystemConfig, TierId, TieredSystem};
use chrono_repro::tiering_policies::{DriverConfig, SimulationDriver};
use chrono_repro::workloads::{PmbenchConfig, PmbenchWorkload, Workload};

fn main() {
    // A DRAM + Optane-PMem system: 4K fast frames, 12K slow frames (the
    // paper's 25 % fast share).
    let mut sys = TieredSystem::new(SystemConfig::quarter_fast(16_384));

    // One pmbench-style process with the paper's skewed Gaussian pattern
    // (stride 2, σ = 12.5 % of the space), working set larger than DRAM.
    let workload = PmbenchWorkload::new(PmbenchConfig::paper_skewed(12_288, 0.7, 42));
    sys.add_process(workload.address_space_pages(), PageSize::Base);
    let mut workloads: Vec<Box<dyn Workload>> = vec![Box::new(workload)];

    // Chrono with Table 2 defaults, time-scaled so a Ticking-scan pass takes
    // 100 ms of simulated time instead of the paper's 60 s.
    let mut chrono = ChronoPolicy::new(ChronoConfig::scaled(Nanos::from_millis(100), 1024));

    // Run one simulated second.
    let result =
        SimulationDriver::new(DriverConfig::for_secs(1)).run(&mut sys, &mut workloads, &mut chrono);

    println!("accesses executed : {}", result.accesses);
    println!(
        "throughput        : {:.1} M accesses/simulated-second",
        result.throughput() / 1e6
    );
    println!(
        "fast-tier hit rate: {:.1}% of accesses",
        sys.stats.fmar() * 100.0
    );
    println!(
        "avg / P99 latency : {} / {}",
        result.latency.mean(),
        result.latency.quantile(0.99)
    );
    println!(
        "promoted {} pages, demoted {} pages, {} thrashing events",
        sys.stats.promoted_pages, sys.stats.demoted_pages, sys.stats.thrash_events
    );
    println!(
        "fast tier occupancy: {}/{} frames, CIT threshold settled at {}",
        sys.used_frames(TierId::FAST),
        sys.total_frames(TierId::FAST),
        chrono.cit_threshold()
    );
}
