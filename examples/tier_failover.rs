//! Tier failover: a three-tier run that loses and regains its CXL tier.
//!
//! Runs cascaded Chrono on the DRAM+CXL+PMem chain twice: once fault-free,
//! once under `FaultPlan::canonical3` (the harness
//! `--topology three-tier --fault-plan canonical3` combination) — a 25 %
//! mid-tier shrink, a degrade window, then the full failure-domain arc:
//! the CXL tier goes `Offline` at the midpoint with an evacuation
//! deadline, its resident pages drain to the nearest healthy neighbors
//! over the emergency lane (spilling to swap when both are full), the
//! chain splices DRAM directly to PMem, and at three quarters of the run
//! the device returns, rejoins, and is re-admitted.
//!
//! The assertions make the demo double as a regression test for the
//! acceptance bar: the run completes, the failure arc actually fired
//! (health transitions, evacuated pages), the evacuation flow balances,
//! zero pages sit on the tier while it is offline (checked here at the
//! end; the invariant oracle enforces it every scan period under
//! `harness fuzz --tier-chaos`), the rejoined tier is live again, and
//! chaos throughput stays within 25 % of the fault-free run.
//!
//! ```text
//! cargo run --release --example tier_failover
//! ```

use chrono_repro::harness::runner::run_policy;
use chrono_repro::harness::{FaultPlanKind, PolicyKind, Scale, StandardRun, Topology};
use chrono_repro::sim_clock::Nanos;
use chrono_repro::tiered_mem::{PageSize, TierHealth, TierId};
use chrono_repro::workloads::{PmbenchConfig, PmbenchWorkload, Workload};

const TIER_NAMES: [&str; 3] = ["DRAM", "CXL", "PMem"];
const PAGES: u32 = 4096;

fn run_once(fault: Option<FaultPlanKind>) -> StandardRun {
    let scale = Scale {
        run_for: Nanos::from_millis(400),
        topology: Topology::ThreeTier,
        fault,
        ..Scale::default_scale()
    };
    run_policy(
        PolicyKind::Chrono,
        &scale,
        PAGES + PAGES / 4,
        PageSize::Base,
        None,
        || {
            vec![Box::new(PmbenchWorkload::new(PmbenchConfig::paper_skewed(
                PAGES, 0.7, 42,
            ))) as Box<dyn Workload>]
        },
    )
}

fn main() {
    let clean = run_once(None);
    let chaos = run_once(Some(FaultPlanKind::Canonical3));

    let s = &chaos.sys.stats;
    println!(
        "fault-free : {:>9} accesses, throughput {:>10.0}/s",
        clean.result.accesses,
        clean.throughput()
    );
    println!(
        "canonical3 : {:>9} accesses, throughput {:>10.0}/s",
        chaos.result.accesses,
        chaos.throughput()
    );
    for t in 0..3u8 {
        println!(
            "  tier {t} {:4}  {:>5} frames resident, health {:?}",
            TIER_NAMES[t as usize],
            chaos.sys.used_frames(TierId(t)),
            chaos.sys.tier_health(TierId(t)),
        );
    }
    println!(
        "evacuation : {} issued = {} rehomed + {} swapped + {} faulted + {} in flight",
        s.evacuated_pages,
        s.evac_rehomed_pages,
        s.evac_swapped_pages,
        s.evac_faulted_pages,
        chaos.sys.in_flight_evac_pages()
    );
    println!(
        "lifecycle  : {} tier health transitions",
        s.tier_health_transitions
    );

    // The failure arc fired: degrade → evacuating → offline → rejoining →
    // online is at least five transitions on the CXL tier alone.
    assert!(
        s.tier_health_transitions >= 5,
        "canonical3 recorded only {} health transitions",
        s.tier_health_transitions
    );
    assert!(
        s.evacuated_pages > 0,
        "the CXL tier went offline without evacuating anything"
    );
    // Evacuation flow conservation (the oracle's evac_flow invariant).
    assert_eq!(
        s.evacuated_pages,
        s.evac_rehomed_pages
            + s.evac_swapped_pages
            + s.evac_faulted_pages
            + chaos.sys.in_flight_evac_pages(),
        "evacuation flow does not balance"
    );
    // The device came back at 3/4 of the run and was re-admitted: by the
    // end the tier is a live chain member again (zero residency while it
    // was offline is oracle-enforced under `harness fuzz --tier-chaos`).
    assert_eq!(
        chaos.sys.tier_health(TierId(1)),
        TierHealth::Online,
        "the CXL tier never rejoined"
    );
    // Completion under chaos: the run finished its full simulated length
    // and kept throughput within 25 % of fault-free.
    let ratio = chaos.throughput() / clean.throughput();
    println!(
        "ratio      : {:.1} % of fault-free throughput",
        ratio * 100.0
    );
    assert!(
        ratio >= 0.75,
        "losing the CXL tier cost {:.1} % throughput (bar: 25 %)",
        (1.0 - ratio) * 100.0
    );
    println!("tier failover arc completed; evacuation flow balanced");
}
