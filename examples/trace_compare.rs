//! Reproduces the end-to-end throughput comparison with tracing enabled and
//! prints per-period rows for two policies side by side.
//!
//! ```text
//! cargo run --release --example trace_compare -- Chrono Tpp
//! ```

use chrono_repro::harness::runner::{run_policy, PolicyKind, Scale};
use chrono_repro::sim_clock::Nanos;
use chrono_repro::tiered_mem::{PageSize, TieredSystem};
use chrono_repro::workloads::{PmbenchConfig, PmbenchWorkload, Workload};

fn kind_of(name: &str) -> PolicyKind {
    match name {
        "Static" => PolicyKind::Static,
        "LinuxNb" => PolicyKind::LinuxNb,
        "AutoTiering" => PolicyKind::AutoTiering,
        "MultiClock" => PolicyKind::MultiClock,
        "Tpp" => PolicyKind::Tpp,
        "Memtis" => PolicyKind::Memtis,
        "Chrono" => PolicyKind::Chrono,
        other => panic!("unknown policy {other}"),
    }
}

fn traced_run(kind: PolicyKind) -> (TieredSystem, f64) {
    let scale = Scale {
        run_for: Nanos::from_millis(600),
        ..Scale::default_scale()
    };
    let procs = 6;
    let pages = 2048u32;
    let total = procs as u32 * pages;
    let page_size = if kind == PolicyKind::Memtis {
        PageSize::Huge2M
    } else {
        PageSize::Base
    };
    chrono_repro::harness::sink::configure(Some(std::env::temp_dir()), None);
    let run = run_policy(kind, &scale, total + total / 4, page_size, None, || {
        (0..procs)
            .map(|i| {
                Box::new(PmbenchWorkload::new(PmbenchConfig::paper_skewed(
                    pages,
                    0.7,
                    50 + i as u64,
                ))) as Box<dyn Workload>
            })
            .collect()
    });
    (run.sys, run.result.throughput())
}

fn main() {
    for name in std::env::args().skip(1) {
        let (sys, tp) = traced_run(kind_of(&name));
        println!("== {name}: throughput {tp:.0}");
        println!(
            "   stats: promoted {} demoted {} thrash {} hint_faults {} fmar {:.4} kernel_frac {:.4} ctx {}",
            sys.stats.promoted_pages,
            sys.stats.demoted_pages,
            sys.stats.thrash_events,
            sys.stats.hint_faults,
            sys.stats.fmar(),
            sys.stats.kernel_time_fraction(),
            sys.stats.context_switches,
        );
        println!("{}", sys.trace.periods_csv());
    }
}
