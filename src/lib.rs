#![warn(missing_docs)]
//! Facade crate for the Chrono (EuroSys '25) reproduction.
//!
//! Re-exports every workspace crate under one roof so examples, integration
//! tests, and downstream users can depend on a single package:
//!
//! - [`sim_clock`] — virtual time, events, deterministic RNG.
//! - [`tiered_mem`] — the two-tier memory substrate.
//! - [`workloads`] — pmbench / Graph500 / KV-store generators.
//! - [`tiering_metrics`] — histograms, percentiles, F1/PPR scoring.
//! - [`tiering_trace`] — structured run tracing (events + period samples).
//! - [`tiering_policies`] — the baseline tiering policies.
//! - [`chrono_core`] — the paper's contribution: CIT-based tiering.
//! - [`tiering_verify`] — invariant oracle + deterministic fuzzing layer.
//! - [`harness`] — per-figure experiment runners.

pub use chrono_core;
pub use harness;
pub use sim_clock;
pub use tiered_mem;
pub use tiering_metrics;
pub use tiering_policies;
pub use tiering_trace;
pub use tiering_verify;
pub use workloads;
