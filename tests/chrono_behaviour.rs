//! Behavioural integration tests for Chrono's mechanisms: threshold
//! convergence, the thrashing monitor, huge-page scaling, and the ablation
//! ladder of Fig 13.

use chrono_repro::chrono_core::{theory, ChronoConfig, ChronoPolicy, TuningMode};
use chrono_repro::sim_clock::Nanos;
use chrono_repro::tiered_mem::{PageSize, SystemConfig, TieredSystem};
use chrono_repro::tiering_policies::{DriverConfig, SimulationDriver};
use chrono_repro::workloads::{AccessPattern, AccessReq};
use chrono_repro::workloads::{HotsetPattern, PmbenchConfig, PmbenchWorkload, Workload};
use sim_clock::DetRng;

fn scaled_cfg() -> ChronoConfig {
    ChronoConfig {
        p_victim: 0.002,
        ..ChronoConfig::scaled(Nanos::from_millis(100), 1024)
    }
}

fn run_chrono(cfg: ChronoConfig, pages: u32, run_ms: u64) -> (TieredSystem, ChronoPolicy) {
    let mut sys = TieredSystem::new(SystemConfig::quarter_fast(pages + pages / 4));
    let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(pages, 0.7, 5));
    sys.add_process(w.address_space_pages(), PageSize::Base);
    let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
    let mut policy = ChronoPolicy::new(cfg);
    SimulationDriver::new(DriverConfig {
        run_for: Nanos::from_millis(run_ms),
        ..Default::default()
    })
    .run(&mut sys, &mut wls, &mut policy);
    (sys, policy)
}

#[test]
fn threshold_converges_to_a_stable_band() {
    let (_sys, policy) = run_chrono(scaled_cfg(), 8192, 1500);
    let hist = policy.threshold_history();
    assert!(hist.len() >= 10);
    // The second half of the trace must stay within a factor-4 band — the
    // Fig 10b "converges to about 200 ms" behaviour at our scale.
    let tail: Vec<f64> = hist[hist.len() / 2..].iter().map(|&(_, v)| v).collect();
    let lo = tail.iter().cloned().fold(f64::MAX, f64::min);
    let hi = tail.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        hi / lo < 8.0,
        "threshold still swinging: {:.3}..{:.3} ms",
        lo,
        hi
    );
}

#[test]
fn rate_limit_decreases_once_placement_stabilizes() {
    let (_sys, policy) = run_chrono(scaled_cfg(), 8192, 1500);
    let (early, late) =
        ChronoPolicy::history_trend(policy.rate_history(), 2, 3).expect("no tune periods ran");
    // Fig 10c: aggressive at start, lower and stable at the end.
    assert!(
        late < early,
        "rate limit should decline: early {:.1} MB/s, late {:.1} MB/s",
        early,
        late
    );
}

#[test]
fn history_trend_survives_short_runs() {
    // A run shorter than one scan period leaves zero or one tune-period
    // samples; trend extraction must not panic on those histories.
    let (_sys, policy) = run_chrono(scaled_cfg(), 2048, 50);
    let hist = policy.rate_history();
    assert!(
        hist.len() < 3,
        "expected a short history, got {}",
        hist.len()
    );
    match ChronoPolicy::history_trend(hist, 2, 3) {
        Some((early, late)) => {
            assert!(early.is_finite() && late.is_finite());
        }
        None => assert!(hist.is_empty()),
    }
    // Synthetic single- and two-sample histories exercise the clamping.
    let one = [(Nanos::from_millis(1), 5.0)];
    assert_eq!(ChronoPolicy::history_trend(&one, 2, 3), Some((5.0, 5.0)));
    let two = [(Nanos::from_millis(1), 4.0), (Nanos::from_millis(2), 8.0)];
    assert_eq!(ChronoPolicy::history_trend(&two, 2, 3), Some((6.0, 6.0)));
    assert_eq!(ChronoPolicy::history_trend(&[], 2, 3), None);
}

/// A workload engineered to thrash: the hot set is slightly larger than the
/// fast tier, so boundary pages ping-pong.
struct ThrashWorkload {
    pattern: HotsetPattern,
    rng: DetRng,
}

impl Workload for ThrashWorkload {
    fn next_access(&mut self) -> Option<AccessReq> {
        Some(AccessReq {
            vpn: self.pattern.sample(&mut self.rng),
            write: false,
            think: Nanos::ZERO,
        })
    }
    fn address_space_pages(&self) -> u32 {
        self.pattern.pages()
    }
    fn label(&self) -> String {
        "thrash".into()
    }
}

#[test]
fn thrashing_monitor_detects_and_halves_rate() {
    let mut sys = TieredSystem::new(SystemConfig::dram_pmem(512, 4096));
    // Hot set = 1.5x the fast tier, fed 95 % of accesses: guaranteed churn.
    let w = ThrashWorkload {
        pattern: HotsetPattern::new(4096, 768.0 / 4096.0, 0.95),
        rng: DetRng::seed(77),
    };
    sys.add_process(w.address_space_pages(), PageSize::Base);
    let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
    let cfg = ChronoConfig {
        tuning: TuningMode::Manual {
            cit_threshold: Nanos::from_millis(50),
            rate_limit: 512 * 1024 * 1024,
        },
        ..scaled_cfg()
    };
    let mut policy = ChronoPolicy::new(cfg);
    SimulationDriver::new(DriverConfig {
        run_for: Nanos::from_millis(1200),
        ..Default::default()
    })
    .run(&mut sys, &mut wls, &mut policy);
    assert!(
        policy.thrash_events() > 0,
        "ping-pong workload must trip the monitor"
    );
    assert!(
        policy.rate_limit() < 512 * 1024 * 1024,
        "rate limit should have been halved at least once"
    );
}

#[test]
fn huge_pages_run_with_scaled_threshold() {
    let mut sys = TieredSystem::new(SystemConfig::quarter_fast(24_576));
    let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(16_384, 0.7, 9));
    sys.add_process(w.address_space_pages(), PageSize::Huge2M);
    let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
    let mut policy = ChronoPolicy::new(scaled_cfg());
    SimulationDriver::new(DriverConfig {
        run_for: Nanos::from_millis(800),
        ..Default::default()
    })
    .run(&mut sys, &mut wls, &mut policy);
    // Promotion happens in whole blocks.
    assert_eq!(sys.stats.promoted_pages % 512, 0);
    assert!(sys.stats.promoted_pages > 0, "no huge promotions at all");
}

#[test]
fn ablation_ladder_matches_fig13() {
    // The Fig 13 endpoints at the write-heavy ratio where the DCSC benefit
    // is largest: full (DCSC) beats basic (1-round, semi-auto), and the
    // 2-round variant stays within noise of basic or better.
    let throughput = |cfg: ChronoConfig| -> f64 {
        let total = 6u32 * 2048;
        let mut sys = TieredSystem::new(SystemConfig::quarter_fast(total + total / 8));
        let mut wls: Vec<Box<dyn Workload>> = Vec::new();
        for i in 0..6 {
            let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(2048, 0.05, 1400 + i));
            sys.add_process(w.address_space_pages(), PageSize::Base);
            wls.push(Box::new(w));
        }
        let mut policy = ChronoPolicy::new(cfg);
        SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(1500),
            ..Default::default()
        })
        .run(&mut sys, &mut wls, &mut policy)
        .throughput()
    };
    let basic = throughput(scaled_cfg().variant_basic());
    let twice = throughput(scaled_cfg().variant_twice());
    let full = throughput(scaled_cfg().variant_full());
    assert!(
        full > basic,
        "full ({:.0}) must beat basic ({:.0})",
        full,
        basic
    );
    assert!(
        twice * 1.25 > basic,
        "twice ({:.0}) should not collapse below basic ({:.0})",
        twice,
        basic
    );
}

#[test]
fn theory_backs_the_two_round_choice() {
    // The integration-level sanity of Appendix B: the max estimator is
    // tighter, and two rounds maximize efficiency across realistic α.
    assert!(theory::max_estimator_variance(1.0, 2) < theory::mean_estimator_variance(1.0, 2));
    for alpha in [0.4, 0.7, 1.0] {
        assert_eq!(theory::best_round_count(alpha, 7), 2);
    }
}
