//! Differential determinism regression: every policy, run twice on the same
//! seed, must produce byte-identical trace digests. Any nondeterminism in
//! the substrate, the workload generators, or a policy's internal state
//! (hash-map iteration order, wall-clock leakage, uninitialized reads)
//! changes the digest and fails here with the offending policy named.

use chrono_repro::tiering_verify::{determinism_digests, run_policy_case, ALL_POLICIES};

const SEED: u64 = 0xD7_0001;
const RUN_MILLIS: u64 = 10;

#[test]
fn every_policy_is_deterministic() {
    for p in ALL_POLICIES {
        let (a, b) = determinism_digests(p, SEED, RUN_MILLIS);
        assert_eq!(
            a,
            b,
            "{}: same seed produced different trace digests ({a:016x} vs {b:016x})",
            p.name()
        );
    }
}

#[test]
fn digests_depend_on_the_seed() {
    // Guard against a degenerate digest (e.g. hashing nothing): different
    // seeds must diverge for at least the trace-rich policies.
    for p in ALL_POLICIES {
        let a = run_policy_case(p, 0xA11CE, RUN_MILLIS);
        let b = run_policy_case(p, 0xB0B, RUN_MILLIS);
        assert_ne!(
            a.digest,
            b.digest,
            "{}: different seeds collided — digest is not capturing the run",
            p.name()
        );
    }
}
