//! Differential determinism regression: every policy, run twice on the same
//! seed, must produce byte-identical trace digests. Any nondeterminism in
//! the substrate, the workload generators, or a policy's internal state
//! (hash-map iteration order, wall-clock leakage, uninitialized reads)
//! changes the digest and fails here with the offending policy named.

use chrono_repro::tiering_verify::{determinism_digests, golden, run_policy_case, ALL_POLICIES};

const SEED: u64 = 0xD7_0001;
const RUN_MILLIS: u64 = 10;

#[test]
fn every_policy_is_deterministic() {
    for p in ALL_POLICIES {
        let (a, b) = determinism_digests(p, SEED, RUN_MILLIS);
        assert_eq!(
            a,
            b,
            "{}: same seed produced different trace digests ({a:016x} vs {b:016x})",
            p.name()
        );
    }
}

/// Digest-stability regression: every committed golden — all policies on
/// both canonical seeds, plus the faulty-run golden — must match a fresh
/// recomputation byte for byte. This is the explicit proof that hot-path
/// refactors (flat tables, batched scans, memoised deadlines) change no
/// observable behaviour: any drift fails here with the diverging lines
/// printed, and fixing it by re-blessing is a deliberate, reviewed act.
#[test]
fn committed_goldens_match_recomputation() {
    for result in golden::check_goldens() {
        assert!(
            result.ok(),
            "golden digest drifted — the change is not behaviour-neutral:\n{result}"
        );
    }
}

#[test]
fn digests_depend_on_the_seed() {
    // Guard against a degenerate digest (e.g. hashing nothing): different
    // seeds must diverge for at least the trace-rich policies.
    for p in ALL_POLICIES {
        let a = run_policy_case(p, 0xA11CE, RUN_MILLIS);
        let b = run_policy_case(p, 0xB0B, RUN_MILLIS);
        assert_ne!(
            a.digest,
            b.digest,
            "{}: different seeds collided — digest is not capturing the run",
            p.name()
        );
    }
}
