//! Differential determinism regression: every policy, run twice on the same
//! seed, must produce byte-identical trace digests. Any nondeterminism in
//! the substrate, the workload generators, or a policy's internal state
//! (hash-map iteration order, wall-clock leakage, uninitialized reads)
//! changes the digest and fails here with the offending policy named.

use chrono_repro::sim_clock::Nanos;
use chrono_repro::tiered_mem::FaultPlan;
use chrono_repro::tiering_verify::{
    determinism_digests, golden, run_policy_case, run_sharded_case, run_sharded_case_permuted,
    run_sharded_case_with_plans, run_three_tier_case, PolicyUnderTest, ALL_POLICIES,
    SHARD_GOLDEN_TENANTS, THREE_TIER_POLICIES,
};

/// Parses one golden table line: `<policy> <digest-hex> <accesses> [tenant
/// digests...]`.
fn parse_golden_line(line: &str) -> (&str, u64, u64, Vec<u64>) {
    let mut f = line.split_whitespace();
    let name = f.next().expect("policy name");
    let digest = u64::from_str_radix(f.next().expect("digest"), 16).expect("digest hex");
    let accesses: u64 = f.next().expect("accesses").parse().expect("accesses int");
    let tenants = f
        .map(|d| u64::from_str_radix(d, 16).expect("tenant digest hex"))
        .collect();
    (name, digest, accesses, tenants)
}

const SEED: u64 = 0xD7_0001;
const RUN_MILLIS: u64 = 10;

#[test]
fn every_policy_is_deterministic() {
    for p in ALL_POLICIES {
        let (a, b) = determinism_digests(p, SEED, RUN_MILLIS);
        assert_eq!(
            a,
            b,
            "{}: same seed produced different trace digests ({a:016x} vs {b:016x})",
            p.name()
        );
    }
}

/// Digest-stability regression: every committed golden — all policies on
/// both canonical seeds, plus the faulty-run golden — must match a fresh
/// recomputation byte for byte. This is the explicit proof that hot-path
/// refactors (flat tables, batched scans, memoised deadlines) change no
/// observable behaviour: any drift fails here with the diverging lines
/// printed, and fixing it by re-blessing is a deliberate, reviewed act.
#[test]
fn committed_goldens_match_recomputation() {
    for result in golden::check_goldens() {
        assert!(
            result.ok(),
            "golden digest drifted — the change is not behaviour-neutral:\n{result}"
        );
    }
}

/// Compat pin: a single-tenant run through the sharded barrier runner (hook
/// off) reproduces the committed classic goldens byte for byte, for every
/// policy on both canonical seeds. One shard always steps sequentially, so
/// the worker-thread count is irrelevant here by construction — we run at
/// `threads = 2` to prove the parameter really is inert; the multi-tenant
/// suite below is where thread counts genuinely fan out.
#[test]
fn sharded_compat_reproduces_committed_goldens() {
    for &seed in &golden::GOLDEN_SEEDS {
        let table = std::fs::read_to_string(golden::golden_path(seed))
            .expect("committed golden missing — run `harness verify --bless`");
        for (i, line) in table.lines().filter(|l| !l.starts_with('#')).enumerate() {
            let (name, digest, accesses, _) = parse_golden_line(line);
            let p = ALL_POLICIES[i];
            assert_eq!(p.name(), name, "golden table order drifted");
            let r = run_sharded_case(p, seed, golden::GOLDEN_MILLIS, 1, 2, false);
            assert_eq!(
                r.combined_digest, digest,
                "{name}/{seed:#x}: sharded compat digest diverged from committed golden"
            );
            assert_eq!(
                r.accesses, accesses,
                "{name}/{seed:#x}: access count diverged"
            );
            assert!(r.clean(), "{name}/{seed:#x}: violations {:?}", r.violations);
        }
    }
}

/// Thread-invariance pin: for both canonical seeds and all 10 policies, the
/// 3-tenant shard golden (admission hook on) is reproduced byte for byte at
/// 1, 2, and 8 worker threads — combined digest, per-tenant digests, and
/// access counts. Any cross-shard effect applied off-barrier or out of
/// tenant-id order diverges here with the policy and thread count named.
#[test]
fn shard_goldens_are_thread_invariant() {
    for &seed in &golden::GOLDEN_SEEDS {
        let table = std::fs::read_to_string(golden::shard_golden_path(seed))
            .expect("committed shard golden missing — run `harness verify --bless`");
        for (i, line) in table.lines().filter(|l| !l.starts_with('#')).enumerate() {
            let (name, digest, accesses, tenant_digests) = parse_golden_line(line);
            let p = ALL_POLICIES[i];
            assert_eq!(p.name(), name, "shard golden table order drifted");
            for threads in [1usize, 2, 8] {
                let r = run_sharded_case(
                    p,
                    seed,
                    golden::SHARD_GOLDEN_MILLIS,
                    SHARD_GOLDEN_TENANTS,
                    threads,
                    true,
                );
                assert_eq!(
                    r.combined_digest, digest,
                    "{name}/{seed:#x} at {threads} threads: combined digest diverged"
                );
                assert_eq!(
                    r.tenant_digests, tenant_digests,
                    "{name}/{seed:#x} at {threads} threads: per-tenant digests diverged"
                );
                assert_eq!(r.accesses, accesses);
                assert!(r.clean(), "{name}/{seed:#x}: violations {:?}", r.violations);
            }
        }
    }
}

/// Dynamic chrono-race property: randomly permuting the shard step order
/// inside every barrier window (seeded Fisher–Yates over
/// `DetRng::split(permute_seed, barrier)`) must reproduce the committed
/// shard goldens byte for byte — shards share nothing between barriers, so
/// no step order can be observable. This is the runtime face of the claim
/// the chrono-race interleaving model proves exhaustively at small scope;
/// a shard mutating cross-shard state off-barrier diverges here with the
/// policy and permute seed named.
#[test]
fn shard_goldens_survive_permuted_step_order() {
    for &seed in &golden::GOLDEN_SEEDS {
        let table = std::fs::read_to_string(golden::shard_golden_path(seed))
            .expect("committed shard golden missing — run `harness verify --bless`");
        for (i, line) in table.lines().filter(|l| !l.starts_with('#')).enumerate() {
            let (name, digest, accesses, tenant_digests) = parse_golden_line(line);
            let p = ALL_POLICIES[i];
            assert_eq!(p.name(), name, "shard golden table order drifted");
            for (permute, threads) in [(0x9E_0001u64, 1usize), (0x9E_0002, 2)] {
                let r = run_sharded_case_permuted(
                    p,
                    seed,
                    golden::SHARD_GOLDEN_MILLIS,
                    SHARD_GOLDEN_TENANTS,
                    threads,
                    true,
                    permute,
                );
                assert_eq!(
                    r.combined_digest, digest,
                    "{name}/{seed:#x} permuted by {permute:#x} at {threads} threads: \
                     combined digest diverged"
                );
                assert_eq!(
                    r.tenant_digests, tenant_digests,
                    "{name}/{seed:#x} permuted by {permute:#x}: per-tenant digests diverged"
                );
                assert_eq!(r.accesses, accesses);
                assert!(r.clean(), "{name}/{seed:#x}: violations {:?}", r.violations);
            }
        }
    }
}

/// Three-tier golden pin: cascaded Chrono-DCSC and TPP-3 on the
/// DRAM+CXL+PMem chain reproduce the committed snapshot byte for byte, for
/// both canonical seeds. Any change to the cascade's routing, the per-edge
/// migration engine, or the chain's cost model diverges here with the
/// policy named.
#[test]
fn three_tier_goldens_match_recomputation() {
    for &seed in &golden::GOLDEN_SEEDS {
        let table = std::fs::read_to_string(golden::three_tier_golden_path(seed))
            .expect("committed three-tier golden missing — run `harness verify --bless`");
        for (i, line) in table.lines().filter(|l| !l.starts_with('#')).enumerate() {
            let (name, digest, accesses, _) = parse_golden_line(line);
            let p = THREE_TIER_POLICIES[i];
            assert_eq!(p.name(), name, "three-tier golden table order drifted");
            let r = run_three_tier_case(p, seed, golden::GOLDEN_MILLIS);
            assert_eq!(
                r.digest, digest,
                "{name}/{seed:#x}: three-tier digest diverged from committed golden"
            );
            assert_eq!(
                r.accesses, accesses,
                "{name}/{seed:#x}: access count diverged"
            );
            assert!(r.clean(), "{name}/{seed:#x}: violations {:?}", r.violations);
        }
    }
}

/// Faulty-plan multi-tenant replay: a canonical fault plan pinned to one
/// tenant replays byte-identically across runs and across worker-thread
/// counts — fault injection stays deterministic under sharded parallelism.
#[test]
fn faulty_multi_tenant_replay_is_thread_invariant() {
    let horizon = Nanos::from_millis(RUN_MILLIS);
    let plan_for =
        move |id: u32| (id == 1).then(|| FaultPlan::canonical(0xFA_0002 ^ id as u64, horizon));
    let run = |threads: usize| {
        run_sharded_case_with_plans(
            PolicyUnderTest::ChronoDcsc,
            0xFA_0002,
            RUN_MILLIS,
            4,
            threads,
            Some(32),
            &plan_for,
        )
    };
    let (one, eight, replay) = (run(1), run(8), run(8));
    assert_eq!(one.combined_digest, eight.combined_digest);
    assert_eq!(one.tenant_digests, eight.tenant_digests);
    assert_eq!(eight.combined_digest, replay.combined_digest);
    assert_eq!(eight.granted_slots, replay.granted_slots);
    assert!(one.clean(), "violations: {:?}", one.violations);
}

#[test]
fn digests_depend_on_the_seed() {
    // Guard against a degenerate digest (e.g. hashing nothing): different
    // seeds must diverge for at least the trace-rich policies.
    for p in ALL_POLICIES {
        let a = run_policy_case(p, 0xA11CE, RUN_MILLIS);
        let b = run_policy_case(p, 0xB0B, RUN_MILLIS);
        assert_ne!(
            a.digest,
            b.digest,
            "{}: different seeds collided — digest is not capturing the run",
            p.name()
        );
    }
}
