//! End-to-end integration tests: every policy drives the full substrate on
//! real workloads, and the paper's qualitative orderings hold.

use chrono_repro::harness::runner::{run_policy, PolicyKind, Scale, Topology};
use chrono_repro::sim_clock::Nanos;
use chrono_repro::tiered_mem::{PageSize, TierId};
use chrono_repro::workloads::{PmbenchConfig, PmbenchWorkload, Workload};

fn quick_scale() -> Scale {
    Scale {
        run_for: Nanos::from_millis(600),
        ..Scale::default_scale()
    }
}

fn skewed_run(kind: PolicyKind) -> chrono_repro::harness::StandardRun {
    skewed_run_on(kind, Topology::DramPmem)
}

fn skewed_run_on(kind: PolicyKind, topology: Topology) -> chrono_repro::harness::StandardRun {
    let scale = Scale {
        topology,
        ..quick_scale()
    };
    let procs = 6;
    let pages = 2048u32;
    let total = procs as u32 * pages;
    let page_size = if kind == PolicyKind::Memtis {
        PageSize::Huge2M
    } else {
        PageSize::Base
    };
    run_policy(kind, &scale, total + total / 4, page_size, None, || {
        (0..procs)
            .map(|i| {
                Box::new(PmbenchWorkload::new(PmbenchConfig::paper_skewed(
                    pages,
                    0.7,
                    50 + i as u64,
                ))) as Box<dyn Workload>
            })
            .collect()
    })
}

#[test]
fn every_policy_completes_and_accounts() {
    for kind in PolicyKind::MAIN {
        let run = skewed_run(kind);
        assert!(run.result.accesses > 100_000, "{}", kind.name());
        // Conservation: frames used across tiers equal resident pages.
        let resident: u32 = run
            .sys
            .pids()
            .map(|p| {
                run.sys
                    .process(p)
                    .space
                    .resident_pages()
                    .iter()
                    .sum::<u32>()
            })
            .sum();
        let used = run.sys.used_frames(TierId::FAST) + run.sys.used_frames(TierId::SLOW);
        assert_eq!(resident, used, "{} leaked frames", kind.name());
        // Time accounting is sane.
        assert!(
            run.sys.stats.kernel_time_fraction() < 0.5,
            "{}",
            kind.name()
        );
    }
}

#[test]
fn chrono_beats_every_baseline_on_fmar() {
    let chrono = skewed_run(PolicyKind::Chrono).sys.stats.fmar();
    for kind in [
        PolicyKind::LinuxNb,
        PolicyKind::AutoTiering,
        PolicyKind::MultiClock,
        PolicyKind::Tpp,
    ] {
        let other = skewed_run(kind).sys.stats.fmar();
        assert!(
            chrono > other,
            "Chrono FMAR {:.3} must beat {} ({:.3})",
            chrono,
            kind.name(),
            other
        );
    }
}

#[test]
fn chrono_throughput_tops_the_field() {
    let chrono = skewed_run(PolicyKind::Chrono).throughput();
    let nb = skewed_run(PolicyKind::LinuxNb).throughput();
    let tpp = skewed_run(PolicyKind::Tpp).throughput();
    assert!(
        chrono > 1.5 * nb,
        "Chrono ({:.0}) should beat Linux-NB ({:.0}) by a large margin",
        chrono,
        nb
    );
    assert!(chrono > tpp, "Chrono ({:.0}) vs TPP ({:.0})", chrono, tpp);
}

#[test]
fn multiclock_has_fewest_context_switches() {
    let mc = skewed_run(PolicyKind::MultiClock)
        .sys
        .stats
        .context_switch_rate();
    let nb = skewed_run(PolicyKind::LinuxNb)
        .sys
        .stats
        .context_switch_rate();
    let chrono = skewed_run(PolicyKind::Chrono)
        .sys
        .stats
        .context_switch_rate();
    assert!(
        mc < nb && mc < chrono,
        "mc {} nb {} chrono {}",
        mc,
        nb,
        chrono
    );
}

#[test]
fn autotiering_pays_highest_kernel_share() {
    // Fig 8: LAP maintenance makes Auto-Tiering's kernel-time share the
    // largest of the fault-based policies.
    let at = skewed_run(PolicyKind::AutoTiering)
        .sys
        .stats
        .kernel_time_fraction();
    let nb = skewed_run(PolicyKind::LinuxNb)
        .sys
        .stats
        .kernel_time_fraction();
    assert!(at > nb, "AT {:.4} vs NB {:.4}", at, nb);
}

#[test]
fn cxl_bottom_tier_outruns_pmem() {
    // Same workload, same policy, same frame budget — only the bottom tier's
    // device model changes. CXL memory is faster on both reads and writes
    // than Optane PMem and carries no write asymmetry, so every slow access
    // and every demotion copy is cheaper and the simulated throughput must
    // come out ahead.
    let pmem = skewed_run(PolicyKind::Chrono);
    let cxl = skewed_run_on(PolicyKind::Chrono, Topology::DramCxl);
    assert!(
        cxl.throughput() > pmem.throughput(),
        "DRAM+CXL ({:.0}) should outrun DRAM+PMem ({:.0})",
        cxl.throughput(),
        pmem.throughput()
    );
    // The chains the runs were actually built on carry the device asymmetry
    // in the tier specs: PMem stores pay a large premium over loads, CXL's
    // are near-symmetric — and both derived copy edges charge no extra
    // write-asymmetry stretch (that knob stays at the compat default).
    let slow = |run: &chrono_repro::harness::StandardRun| run.sys.config().slow().clone();
    let (ps, cs) = (slow(&pmem), slow(&cxl));
    assert!(cs.read_latency < ps.read_latency);
    assert!(cs.write_latency < ps.write_latency);
    assert!(
        (cs.write_latency.0 - cs.read_latency.0) < (ps.write_latency.0 - ps.read_latency.0),
        "CXL must be closer to write-symmetric than PMem"
    );
    for run in [&pmem, &cxl] {
        let edge = run.sys.config().chain.edge_between(TierId(0), TierId(1));
        assert_eq!(edge.write_asymmetry, 1.0, "derived edges stay symmetric");
    }
    // Both runs actually exercised the bottom tier and migrated pages, so
    // the comparison is not vacuous.
    for run in [&pmem, &cxl] {
        assert!(run.sys.used_frames(TierId(1)) > 0);
        assert!(run.sys.stats.demoted_pages > 0);
    }
}

#[test]
fn deterministic_across_repeats() {
    let a = skewed_run(PolicyKind::Chrono);
    let b = skewed_run(PolicyKind::Chrono);
    assert_eq!(a.result.accesses, b.result.accesses);
    assert_eq!(a.sys.stats.promoted_pages, b.sys.stats.promoted_pages);
    assert_eq!(a.sys.stats.fmar().to_bits(), b.sys.stats.fmar().to_bits());
}

#[test]
fn static_placement_is_the_floor() {
    let stat = skewed_run(PolicyKind::Static);
    assert_eq!(stat.sys.stats.promoted_pages, 0);
    assert_eq!(stat.sys.stats.hint_faults, 0);
    let chrono = skewed_run(PolicyKind::Chrono);
    assert!(chrono.throughput() > 2.0 * stat.throughput());
}
