//! The harness regenerates each artifact and the outputs contain the rows
//! the paper reports. Cheap experiments run at full default scale; the
//! expensive simulation figures are exercised through their public cells at
//! reduced scale (the full sweeps run via `harness all`).

use chrono_repro::harness::experiments::{fig12, fig13, fig6};
use chrono_repro::harness::experiments::{figb, tables};
use chrono_repro::harness::runner::{PolicyKind, Scale};
use chrono_repro::sim_clock::Nanos;
use chrono_repro::workloads::KvFlavor;

fn tiny_scale() -> Scale {
    Scale {
        run_for: Nanos::from_millis(300),
        ..Scale::default_scale()
    }
}

#[test]
fn tables_render_paper_content() {
    let t1 = tables::table1();
    assert!(t1.contains("Dynamic CIT stats"));
    assert!(t1.contains("0~1000 access/sec"));
    let t2 = tables::table2();
    assert!(t2.contains("auto-tuned"));
}

#[test]
fn appendix_figures_are_exact() {
    let b1 = figb::run_b1();
    assert!(b1.lines().count() >= 23, "B1 table too short");
    let b2 = figb::run_b2();
    assert!(b2.contains("n=2"));
}

#[test]
fn fig6_cell_produces_throughput_and_chrono_wins() {
    let scale = tiny_scale();
    let (_, procs, pages, frames) = ("test", 4, 2048u32, 13_000u32);
    let nb = fig6::run_cell(PolicyKind::LinuxNb, &scale, procs, pages, frames, 0.7);
    let ch = fig6::run_cell(PolicyKind::Chrono, &scale, procs, pages, frames, 0.7);
    assert!(nb > 0.0 && ch > 0.0);
    assert!(ch > nb, "Chrono {:.0} must beat NB {:.0}", ch, nb);
}

#[test]
fn fig12_cell_runs_both_flavors() {
    let scale = tiny_scale();
    for flavor in [KvFlavor::Memcached, KvFlavor::Redis] {
        let v = fig12::run_cell(PolicyKind::Chrono, &scale, flavor, 0.5);
        assert!(v > 0.0, "{:?} produced no throughput", flavor);
    }
}

#[test]
fn fig13_cell_covers_ablations() {
    let scale = tiny_scale();
    for kind in [PolicyKind::ChronoBasic, PolicyKind::ChronoManual] {
        let v = fig13::run_cell(kind, &scale, 0.7);
        assert!(v > 0.0, "{} produced no throughput", kind.name());
    }
}

#[test]
fn experiment_registry_is_complete() {
    use chrono_repro::harness::experiments::EXPERIMENTS;
    // Every paper artifact has an entry: 2 tables, figures 1-2 (a/b), 6-13,
    // and the two appendix figures.
    assert!(EXPERIMENTS.len() >= 19);
    for id in [
        "table1", "table2", "fig1", "fig2a", "fig2b", "fig6", "fig7", "fig8", "fig9", "fig10a",
        "fig10b", "fig10c", "fig10d", "fig11a", "fig11b", "fig12", "fig13", "figb1", "figb2",
    ] {
        assert!(
            EXPERIMENTS.iter().any(|(e, _)| *e == id),
            "missing experiment {}",
            id
        );
    }
}
