//! Property-style tests of the substrate's invariants under random
//! operation sequences spanning crates.
//!
//! The registry is unreachable in the offline build environment, so instead
//! of `proptest` these run deterministic randomized cases driven by the
//! repo's own `DetRng`: 64 seeded cases per property, with the failing seed
//! printed by the assertion message for replay.

use chrono_repro::sim_clock::DetRng;
use chrono_repro::tiered_mem::{MigrateMode, PageSize, SystemConfig, TierId, TieredSystem, Vpn};

const CASES: u64 = 64;

/// Random op against a small system.
#[derive(Debug, Clone)]
enum Op {
    Access { vpn: u16, write: bool },
    Promote { vpn: u16 },
    Demote { vpn: u16 },
    PopVictim,
    Age,
}

fn random_op(rng: &mut DetRng, pages: u16) -> Op {
    match rng.below(5) {
        0 => Op::Access {
            vpn: rng.below(pages as u64) as u16,
            write: rng.chance(0.5),
        },
        1 => Op::Promote {
            vpn: rng.below(pages as u64) as u16,
        },
        2 => Op::Demote {
            vpn: rng.below(pages as u64) as u16,
        },
        3 => Op::PopVictim,
        _ => Op::Age,
    }
}

fn check_invariants(sys: &TieredSystem, pages: u32, seed: u64) {
    // Frame conservation: resident pages equal used frames per tier.
    let mut resident = [0u32; 2];
    for pid in sys.pids() {
        let [f, s] = sys.process(pid).space.resident_pages();
        resident[0] += f;
        resident[1] += s;
    }
    assert_eq!(
        resident[0],
        sys.used_frames(TierId::Fast),
        "fast-tier frame conservation (seed {seed})"
    );
    assert_eq!(
        resident[1],
        sys.used_frames(TierId::Slow),
        "slow-tier frame conservation (seed {seed})"
    );
    assert!(resident[0] + resident[1] <= pages, "seed {seed}");
    // Watermarks stay ordered.
    assert!(sys.watermarks.well_ordered(), "seed {seed}");
    // Stats counters are self-consistent.
    assert!(
        sys.stats.hint_faults <= sys.stats.context_switches,
        "seed {seed}"
    );
}

#[test]
fn random_op_sequences_preserve_invariants() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed(0x5EED_0000 + seed);
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(64, 512));
        let pid = sys.add_process(256, PageSize::Base);
        let n_ops = rng.below(399) + 1;
        for _ in 0..n_ops {
            match random_op(&mut rng, 256) {
                Op::Access { vpn, write } => {
                    sys.access(pid, Vpn(vpn as u32), write);
                }
                Op::Promote { vpn } => {
                    let _ = sys.promote_with_reclaim(pid, Vpn(vpn as u32), MigrateMode::Async);
                }
                Op::Demote { vpn } => {
                    let _ = sys.migrate(pid, Vpn(vpn as u32), TierId::Slow, MigrateMode::Async);
                }
                Op::PopVictim => {
                    // Victim popping must never yield a non-resident page.
                    if let Some((p, v)) = sys.pop_inactive_victim(TierId::Fast) {
                        assert!(sys.process(p).space.entry(v).present(), "seed {seed}");
                        assert_eq!(
                            sys.process(p).space.entry(v).tier(),
                            TierId::Fast,
                            "seed {seed}"
                        );
                        // Reinsert so lists stay populated.
                        sys.lru_insert(p, v, chrono_repro::tiered_mem::LruKind::Inactive);
                    }
                }
                Op::Age => {
                    sys.age_active_list(TierId::Fast, rng.below(64) as u32 + 1);
                }
            }
            check_invariants(&sys, 256, seed);
        }
    }
}

#[test]
fn huge_mappings_preserve_block_integrity() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed(0x8006_0000 + seed);
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(4096, 8192));
        let pid = sys.add_process(4096, PageSize::Huge2M);
        let n_touches = rng.below(59) + 1;
        for _ in 0..n_touches {
            sys.access(pid, Vpn(rng.below(4096) as u32), false);
        }
        let n_migrations = rng.below(20);
        for _ in 0..n_migrations {
            let vpn = Vpn(rng.below(4096) as u32);
            let head = sys.process(pid).space.pte_page(vpn);
            if sys.process(pid).space.entry(head).present() {
                let to = sys.process(pid).space.entry(head).tier().other();
                let _ = sys.migrate(pid, vpn, to, MigrateMode::Async);
            }
        }
        // Every present block is fully resident in exactly one tier.
        for head in (0..4096).step_by(512) {
            let h = sys.process(pid).space.entry(Vpn(head));
            if h.present() {
                let tier = h.tier();
                for off in 0..512 {
                    let e = sys.process(pid).space.entry(Vpn(head + off));
                    assert!(!e.pfn.is_none(), "seed {seed}");
                    assert_eq!(e.tier(), tier, "seed {seed}");
                }
            }
        }
        check_invariants(&sys, 4096, seed);
    }
}

#[test]
fn heatmap_mass_is_conserved_under_decay_and_scale() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed(0x4EA7_0000 + seed);
        let mut m = chrono_repro::chrono_core::HeatMap::new(28);
        let mut total = 0.0;
        let n_adds = rng.below(49) + 1;
        for _ in 0..n_adds {
            let bucket = rng.below(28) as usize;
            let pages = 1.0 + rng.unit_f64() * 99.0;
            m.add(bucket, pages);
            total += pages;
        }
        let decay = 0.1 + rng.unit_f64() * 0.9;
        assert!((m.total() - total).abs() < 1e-6, "seed {seed}");
        m.decay(decay);
        assert!((m.total() - total * decay).abs() < 1e-6, "seed {seed}");
        let scaled = m.scaled_to(1000.0);
        assert!((scaled.total() - 1000.0).abs() < 1e-6, "seed {seed}");
    }
}

#[test]
fn overlap_misplacement_never_exceeds_slow_population() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed(0x0E11_0000 + seed);
        let mut fast = chrono_repro::chrono_core::HeatMap::new(16);
        let mut slow = chrono_repro::chrono_core::HeatMap::new(16);
        for _ in 0..rng.below(20) {
            fast.add(rng.below(16) as usize, rng.unit_f64() * 500.0);
        }
        for _ in 0..rng.below(20) {
            slow.add(rng.below(16) as usize, rng.unit_f64() * 500.0);
        }
        let capacity = 1.0 + rng.unit_f64() * 4999.0;
        let o = chrono_repro::chrono_core::heatmap::identify_overlap(&fast, &slow, capacity);
        assert!(o.misplaced_slow_pages >= -1e-9, "seed {seed}");
        assert!(
            o.misplaced_slow_pages <= slow.total() + 1e-6,
            "seed {seed}: misplaced {} > slow total {}",
            o.misplaced_slow_pages,
            slow.total()
        );
        assert!(o.cutoff_bucket <= 16, "seed {seed}");
    }
}
