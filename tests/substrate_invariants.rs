//! Property-based tests of the substrate's invariants under random
//! operation sequences spanning crates.

use chrono_repro::sim_clock::DetRng;
use chrono_repro::tiered_mem::{MigrateMode, PageSize, SystemConfig, TierId, TieredSystem, Vpn};
use proptest::prelude::*;

/// Random op against a small system.
#[derive(Debug, Clone)]
enum Op {
    Access { vpn: u16, write: bool },
    Promote { vpn: u16 },
    Demote { vpn: u16 },
    PopVictim,
    Age,
}

fn op_strategy(pages: u16) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..pages, any::<bool>()).prop_map(|(vpn, write)| Op::Access { vpn, write }),
        (0..pages).prop_map(|vpn| Op::Promote { vpn }),
        (0..pages).prop_map(|vpn| Op::Demote { vpn }),
        Just(Op::PopVictim),
        Just(Op::Age),
    ]
}

fn check_invariants(sys: &TieredSystem, pages: u32) {
    // Frame conservation: resident pages equal used frames per tier.
    let mut resident = [0u32; 2];
    for pid in sys.pids() {
        let [f, s] = sys.process(pid).space.resident_pages();
        resident[0] += f;
        resident[1] += s;
    }
    assert_eq!(resident[0], sys.used_frames(TierId::Fast));
    assert_eq!(resident[1], sys.used_frames(TierId::Slow));
    assert!(resident[0] + resident[1] <= pages);
    // Watermarks stay ordered.
    assert!(sys.watermarks.well_ordered());
    // Stats counters are self-consistent.
    assert!(sys.stats.hint_faults <= sys.stats.context_switches);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_op_sequences_preserve_invariants(
        ops in prop::collection::vec(op_strategy(256), 1..400),
        seed in any::<u64>(),
    ) {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(64, 512));
        let pid = sys.add_process(256, PageSize::Base);
        let mut rng = DetRng::seed(seed);
        for op in ops {
            match op {
                Op::Access { vpn, write } => {
                    sys.access(pid, Vpn(vpn as u32), write);
                }
                Op::Promote { vpn } => {
                    let _ = sys.promote_with_reclaim(pid, Vpn(vpn as u32), MigrateMode::Async);
                }
                Op::Demote { vpn } => {
                    let _ = sys.migrate(pid, Vpn(vpn as u32), TierId::Slow, MigrateMode::Async);
                }
                Op::PopVictim => {
                    // Victim popping must never yield a non-resident page.
                    if let Some((p, v)) = sys.pop_inactive_victim(TierId::Fast) {
                        prop_assert!(sys.process(p).space.entry(v).present());
                        prop_assert_eq!(sys.process(p).space.entry(v).tier(), TierId::Fast);
                        // Reinsert so lists stay populated.
                        sys.lru_insert(p, v, chrono_repro::tiered_mem::LruKind::Inactive);
                    }
                }
                Op::Age => {
                    sys.age_active_list(TierId::Fast, rng.below(64) as u32 + 1);
                }
            }
            check_invariants(&sys, 256);
        }
    }

    #[test]
    fn huge_mappings_preserve_block_integrity(
        touches in prop::collection::vec(0u32..4096, 1..60),
        migrations in prop::collection::vec(0u32..4096, 0..20),
    ) {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(4096, 8192));
        let pid = sys.add_process(4096, PageSize::Huge2M);
        for vpn in touches {
            sys.access(pid, Vpn(vpn), false);
        }
        for vpn in migrations {
            let head = sys.process(pid).space.pte_page(Vpn(vpn));
            if sys.process(pid).space.entry(head).present() {
                let to = sys.process(pid).space.entry(head).tier().other();
                let _ = sys.migrate(pid, Vpn(vpn), to, MigrateMode::Async);
            }
        }
        // Every present block is fully resident in exactly one tier.
        for head in (0..4096).step_by(512) {
            let h = sys.process(pid).space.entry(Vpn(head));
            if h.present() {
                let tier = h.tier();
                for off in 0..512 {
                    let e = sys.process(pid).space.entry(Vpn(head + off));
                    prop_assert!(!e.pfn.is_none());
                    prop_assert_eq!(e.tier(), tier);
                }
            }
        }
        check_invariants(&sys, 4096);
    }

    #[test]
    fn heatmap_mass_is_conserved_under_decay_and_scale(
        adds in prop::collection::vec((0usize..28, 1.0f64..100.0), 1..50),
        decay in 0.1f64..1.0,
    ) {
        let mut m = chrono_repro::chrono_core::HeatMap::new(28);
        let mut total = 0.0;
        for (bucket, pages) in adds {
            m.add(bucket, pages);
            total += pages;
        }
        prop_assert!((m.total() - total).abs() < 1e-6);
        m.decay(decay);
        prop_assert!((m.total() - total * decay).abs() < 1e-6);
        let scaled = m.scaled_to(1000.0);
        prop_assert!((scaled.total() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn overlap_misplacement_never_exceeds_slow_population(
        fast_adds in prop::collection::vec((0usize..16, 0.0f64..500.0), 0..20),
        slow_adds in prop::collection::vec((0usize..16, 0.0f64..500.0), 0..20),
        capacity in 1.0f64..5000.0,
    ) {
        let mut fast = chrono_repro::chrono_core::HeatMap::new(16);
        let mut slow = chrono_repro::chrono_core::HeatMap::new(16);
        for (b, p) in fast_adds { fast.add(b, p); }
        for (b, p) in slow_adds { slow.add(b, p); }
        let o = chrono_repro::chrono_core::heatmap::identify_overlap(&fast, &slow, capacity);
        prop_assert!(o.misplaced_slow_pages >= -1e-9);
        prop_assert!(o.misplaced_slow_pages <= slow.total() + 1e-6);
        prop_assert!(o.cutoff_bucket <= 16);
    }
}
