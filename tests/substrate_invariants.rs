//! Property-style tests of the substrate's invariants under random
//! operation sequences spanning crates.
//!
//! The registry is unreachable in the offline build environment, so instead
//! of `proptest` these run deterministic randomized cases driven by the
//! repo's own `DetRng`, through the `tiering-verify` fuzz layer: 256 seeded
//! cases per property, the full `InvariantOracle` checked after every op,
//! and any failure shrunk (ddmin) to a minimal replayable schedule printed
//! with its seed.

use chrono_repro::sim_clock::DetRng;
use chrono_repro::tiered_mem::PageSize;
use chrono_repro::tiering_verify::ops::{fuzz_ops, generate_ops};
use chrono_repro::tiering_verify::{fuzz_one, CaseConfig};

const CASES: u64 = 256;

/// Ops per schedule. Scaled-down from the release-mode `harness fuzz`
/// defaults so the debug-mode suite stays fast; the harness runs the long
/// schedules in CI.
const OPS: usize = 500;

#[test]
fn random_op_sequences_preserve_invariants() {
    for seed in 0..CASES {
        if let Some(shrunk) = fuzz_one(0x5EED_0000 + seed, OPS) {
            panic!("substrate invariant violated:\n{shrunk}");
        }
    }
}

#[test]
fn huge_mappings_preserve_block_integrity() {
    // Force 2 MiB-granularity cases: the oracle's huge_block_integrity and
    // frame-conservation checks run after every op of every schedule.
    for seed in 0..CASES {
        let blocks = 1 + seed % 3;
        let pages = (blocks as u32) * chrono_repro::tiered_mem::HUGE_2M_PAGES;
        let cfg = CaseConfig {
            fast_frames: chrono_repro::tiered_mem::HUGE_2M_PAGES * 2,
            mid_frames: None,
            slow_frames: pages + chrono_repro::tiered_mem::HUGE_2M_PAGES,
            procs: vec![(pages, PageSize::Huge2M)],
            // One 512-frame reservation at most, so demand paging always
            // finds a tier with a whole block free.
            migration: chrono_repro::tiered_mem::MigrationSpec {
                inflight_slots: 1,
                backlog_cap: chrono_repro::sim_clock::Nanos::from_millis(10),
            },
            fault_plan: None,
        };
        let ops = generate_ops(&cfg, 0x8006_0000 + seed, OPS);
        if let Some(shrunk) = fuzz_ops(0x8006_0000 + seed, &cfg, ops) {
            panic!("huge-block invariant violated:\n{shrunk}");
        }
    }
}

#[test]
fn heatmap_mass_is_conserved_under_decay_and_scale() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed(0x4EA7_0000 + seed);
        let mut m = chrono_repro::chrono_core::HeatMap::new(28);
        let mut total = 0.0;
        let n_adds = rng.below(49) + 1;
        for _ in 0..n_adds {
            let bucket = rng.below(28) as usize;
            let pages = 1.0 + rng.unit_f64() * 99.0;
            m.add(bucket, pages);
            total += pages;
        }
        let decay = 0.1 + rng.unit_f64() * 0.9;
        assert!((m.total() - total).abs() < 1e-6, "seed {seed}");
        m.decay(decay);
        assert!((m.total() - total * decay).abs() < 1e-6, "seed {seed}");
        let scaled = m.scaled_to(1000.0);
        assert!((scaled.total() - 1000.0).abs() < 1e-6, "seed {seed}");
    }
}

#[test]
fn overlap_misplacement_never_exceeds_slow_population() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed(0x0E11_0000 + seed);
        let mut fast = chrono_repro::chrono_core::HeatMap::new(16);
        let mut slow = chrono_repro::chrono_core::HeatMap::new(16);
        for _ in 0..rng.below(20) {
            fast.add(rng.below(16) as usize, rng.unit_f64() * 500.0);
        }
        for _ in 0..rng.below(20) {
            slow.add(rng.below(16) as usize, rng.unit_f64() * 500.0);
        }
        let capacity = 1.0 + rng.unit_f64() * 4999.0;
        let o = chrono_repro::chrono_core::heatmap::identify_overlap(&fast, &slow, capacity);
        assert!(o.misplaced_slow_pages >= -1e-9, "seed {seed}");
        assert!(
            o.misplaced_slow_pages <= slow.total() + 1e-6,
            "seed {seed}: misplaced {} > slow total {}",
            o.misplaced_slow_pages,
            slow.total()
        );
        assert!(o.cutoff_bucket <= 16, "seed {seed}");
    }
}
