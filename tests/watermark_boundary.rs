//! Boundary tests for the `Watermarks::retune_pro` × thrashing-monitor
//! `halve_rate_limit` interaction.
//!
//! The proactive-demotion watermark tracks the promotion rate limit (DESIGN
//! §Chrono): `pro` sits `ceil(2 · interval · rate / 4096)` frames above
//! `high`, capped at a quarter of the tier. When the thrashing monitor
//! halves the rate limit, the retuned gap must shrink monotonically and the
//! ordering `min ≤ low ≤ high ≤ pro` must survive — including on tiny tiers
//! where every watermark lands on its floor value.

use chrono_repro::chrono_core::PromotionQueue;
use chrono_repro::sim_clock::Nanos;
use chrono_repro::tiered_mem::Watermarks;

#[test]
fn repeated_halving_shrinks_the_pro_gap_monotonically() {
    let total_frames = 16_384;
    let interval = Nanos::from_millis(100);
    let mut queue = PromotionQueue::new(512 * 1024 * 1024, 1 << 10);
    let mut prev_gap = u32::MAX;
    // Far past the 1 MiB floor: the gap must never grow along the way.
    for round in 0..16 {
        let mut wm = Watermarks::scaled_to(total_frames);
        wm.retune_pro(total_frames, interval, queue.rate_limit());
        assert!(wm.well_ordered(), "round {round}: {wm:?}");
        let gap = wm.pro - wm.high;
        assert!(
            gap <= prev_gap,
            "round {round}: halving the rate limit grew the pro gap {prev_gap} -> {gap}"
        );
        prev_gap = gap;
        queue.halve_rate_limit();
    }
    // At the floor the gap is pinned: two more halvings change nothing.
    let mut at_floor = Watermarks::scaled_to(total_frames);
    at_floor.retune_pro(total_frames, interval, queue.rate_limit());
    queue.halve_rate_limit();
    let mut still_at_floor = Watermarks::scaled_to(total_frames);
    still_at_floor.retune_pro(total_frames, interval, queue.rate_limit());
    assert_eq!(at_floor.pro, still_at_floor.pro, "rate floor must pin pro");
}

#[test]
fn tiny_tiers_stay_well_ordered_at_every_rate() {
    // 16–64-frame tiers: the scaled percentages all collapse onto their
    // floor constants, and `pro`'s quarter-of-tier cap bites immediately.
    let interval = Nanos::from_millis(100);
    for frames in 16..=64u32 {
        let mut rate = 512u64 * 1024 * 1024;
        loop {
            let mut wm = Watermarks::scaled_to(frames);
            wm.retune_pro(frames, interval, rate);
            assert!(
                wm.well_ordered(),
                "{frames}-frame tier at {rate} B/s: {wm:?}"
            );
            assert!(
                wm.pro <= frames,
                "{frames}-frame tier: pro {} exceeds the tier",
                wm.pro
            );
            if rate <= 1024 * 1024 {
                break;
            }
            rate /= 2;
        }
    }
}

#[test]
fn extreme_rates_do_not_break_ordering() {
    let interval = Nanos::from_millis(100);
    for &frames in &[16u32, 64, 1024, 1 << 20] {
        for &rate in &[0u64, 1, 4096, u64::MAX / (1 << 20)] {
            let mut wm = Watermarks::scaled_to(frames);
            wm.retune_pro(frames, interval, rate);
            assert!(wm.well_ordered(), "{frames} frames at {rate} B/s: {wm:?}");
        }
    }
}
